//! Implementation of the `tkc` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; keeping the logic in a
//! library makes the argument parsing and command dispatch unit-testable.
//! Queries are executed through the unified `tkcore` request API
//! ([`tkcore::QueryRequest`] / [`tkcore::CoreBackend`]), so malformed input
//! surfaces as a rendered [`tkcore::TkError`] and a nonzero exit code, never
//! a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::Arc;
use tkc_datasets::{ArrivalProfile, DatasetProfile, DatasetStats, EventStream, EventStreamConfig};
use tkcore::{
    Affinity, Algorithm, CacheStats, CachedBackend, CoreBackend, CoreService, CountingSink,
    IngestDelta, IngestEvent, KOutput, Lane, QueryEngine, QueryRequest, SealPolicy, ServerConfig,
    ServiceConfig, ShardPlan, ShardedBackend, ShardedEngine, TkError, TkServer,
};

/// Errors reported to the CLI user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<temporal_graph::TemporalGraphError> for CliError {
    fn from(e: temporal_graph::TemporalGraphError) -> Self {
        CliError(e.to_string())
    }
}

impl From<TkError> for CliError {
    fn from(e: TkError) -> Self {
        CliError(e.to_string())
    }
}

/// Usage text printed by `tkc help` and on argument errors.
pub const USAGE: &str = "\
tkc — time-range temporal k-core queries

USAGE:
  tkc stats <edge-list>
      Print |V|, |E|, tmax and kmax of a temporal edge-list file (`u v t` per line).

  tkc query <edge-list> (--k <K> | --k-range <MIN>..=<MAX>)
            [--start <TS>] [--end <TE>] [--algo enum|enum-base|otcd|naive]
            [--output count|full] [--limit <N>] [--shards <S>] [--workers <W>]
            [--affinity shared|shard]
      Enumerate all distinct temporal k-cores in the range [TS, TE]
      (default: the whole time span).  `--k-range` sweeps every k in the
      inclusive range through one cached engine, building at most one
      core-window index per k.  `--shards S` cuts the timeline into S
      time-interval shards (one index per touched shard and k, exact
      stitching at shard cuts via the cached boundary index); `--workers W`
      serves the request through a CoreService backed by a persistent
      W-thread work-stealing pool, and `--affinity shard` routes each
      request to the worker owning the shards its window overlaps.
      `--output count` reports counts only; `--output full` (default)
      prints each core's tightest time interval, vertex count and edge
      count.

  tkc batch <edge-list> <queries-csv> [--algo enum|enum-base|otcd|naive]
            [--threads <N>] [--budget-mb <M>] [--shards <S>] [--workers <W>]
            [--affinity shared|shard]
      Run a batch of queries through the cached query engine: one core-window
      index per k (per shard and k with `--shards S`), restricted per query
      and fanned across a persistent thread pool.  `--workers W` instead
      submits every query to a W-worker CoreService and reports per-worker
      latency; `--affinity shard` enables shard-affine routing.  The CSV has
      one query per line, `k,start,end` (or just `k` for the whole time
      span; `#` starts a comment).  Prints per-query counts plus batch
      timing and cache statistics.

  tkc ingest <edge-list> <events|-> [--shards <S>] [--workers <W>]
            [--batch <B>] [--seal-edges <N> | --seal-span <T>]
            [--queries <csv>] [--stats] [--affinity shared|shard]
      Append a live event stream (`u v t` per line; `-` reads stdin) onto
      the sharded engine built from the edge-list.  Events are absorbed in
      batches of B (default 64) into the live tail shard; closed-shard
      skylines stay resident, only tail entries are invalidated.
      `--seal-edges N` / `--seal-span T` roll the tail into a closed shard
      once it holds N edges / spans T timestamps (default: manual, a final
      seal at end of stream).  `--workers W` drives the stream through a
      CoreService's ingest lane instead of absorbing inline.  A rejected
      batch (out-of-order or duplicate event) is retried event by event and
      the rejects counted.  `--queries <csv>` runs a `k,start,end` batch
      against the live engine after the stream drains; `--stats` prints the
      ingest-side cache and service counters.

  tkc serve <edge-list> [--addr <HOST:PORT>] [--shards <S>] [--workers <W>]
            [--conn-workers <C>] [--queue-depth <D>] [--affinity shared|shard]
      Serve the edge-list over TCP speaking line-delimited JSON (one request
      per line, one reply line back — the protocol is documented on
      `tkcore::wire`).  Each query may carry a priority lane (`interactive`
      requests dequeue ahead of `batch`) and a relative `deadline_ms`;
      requests that outlive their deadline while queued are shed with a
      typed `DeadlineExceeded` error reply instead of executing.  Prints
      `listening on <addr>` once the listener is ready (default --addr
      127.0.0.1:7411; port 0 picks an ephemeral port).  A
      `{\"op\": \"shutdown\"}` line (see `tkc client --shutdown`) drains
      gracefully: accepted connections finish, the queue empties, exit 0.

  tkc client <addr> (--k <K> | --k-range <MIN>..=<MAX>) --start <TS> --end <TE>
            [--lane interactive|batch] [--deadline-ms <MS>]
            [--algo enum|enum-base|otcd|naive] [--output count|cores]
  tkc client <addr> (--ping | --stats | --shutdown)
      Send one request line to a running `tkc serve` and print the reply
      line.  A `status: error` reply (shed, refused, failed) is data and
      still exits 0; only transport failures exit nonzero.

  tkc gen-events <count> <output|-> [--vertices <V>] [--start-after <T>]
            [--profile steady|bursty|jitter] [--seed <S>]
      Write a deterministic live event stream (`u v t` per line; `-` prints
      to stdout) whose timestamps start strictly after T — pipe it into
      `tkc ingest`.  Profiles: steady (fixed rate), bursty (dense bursts
      with quiet gaps), jitter (steady with out-of-order timestamps).

  tkc generate <profile> <output-file>
      Write the scaled synthetic analogue of one of the paper's datasets
      (FB BO CM EM MC MO AU LR EN SU WT WK PL YT) as an edge-list file.

  tkc profiles
      List the available dataset profiles.
";

/// What `tkc query` prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// Counts only (cores and `|R|`), no materialisation.
    Count,
    /// Materialise and print each core (up to `--limit`).
    Full,
}

/// Which `k` values a `tkc query` covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KSpec {
    /// `--k K`
    Single(usize),
    /// `--k-range MIN..=MAX` (inclusive).
    Range(usize, usize),
}

/// What a `tkc client` invocation sends to the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientAction {
    /// `--ping`: liveness check.
    Ping,
    /// `--stats`: the service's lane/queue counters.
    Stats,
    /// `--shutdown`: ask the server to drain gracefully.
    Shutdown,
    /// A query line (the default).
    Query {
        /// One `k` or an inclusive sweep.
        ks: KSpec,
        /// Query range start.
        start: u32,
        /// Query range end.
        end: u32,
        /// Priority lane the request queues in.
        lane: Lane,
        /// Relative deadline in milliseconds (shed when exceeded in queue).
        deadline_ms: Option<u64>,
        /// Algorithm override (the server defaults to `enum`).
        algorithm: Option<Algorithm>,
        /// Reply shape: counts or materialized cores.
        output: OutputKind,
    },
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `tkc stats <file>`
    Stats {
        /// Path of the edge-list file.
        path: String,
    },
    /// `tkc query <file> --k K ...`
    Query {
        /// Path of the edge-list file.
        path: String,
        /// Query parameter(s): one `k` or an inclusive sweep.
        ks: KSpec,
        /// Query range start (defaults to 1).
        start: Option<u32>,
        /// Query range end (defaults to the last timestamp).
        end: Option<u32>,
        /// Algorithm to run.
        algorithm: Algorithm,
        /// What to print.
        output: OutputKind,
        /// Print at most this many cores per `k`.
        limit: usize,
        /// Time-interval shards (0 = unsharded span-wide engine).
        shards: usize,
        /// Serve through a CoreService with this many workers (0 = direct).
        workers: usize,
        /// Lane routing of the service (`--affinity shared|shard`).
        affinity: Affinity,
    },
    /// `tkc batch <file> <queries.csv> ...`
    Batch {
        /// Path of the edge-list file.
        path: String,
        /// Path of the query CSV (`k,start,end` per line).
        queries: String,
        /// Algorithm to run for every query.
        algorithm: Algorithm,
        /// Worker threads (0 = one per CPU).
        threads: usize,
        /// Skyline-cache memory budget in MiB.
        budget_mb: usize,
        /// Time-interval shards (0 = unsharded span-wide engine).
        shards: usize,
        /// Serve through a CoreService with this many workers (0 = direct
        /// engine batch).
        workers: usize,
        /// Lane routing of the service (`--affinity shared|shard`).
        affinity: Affinity,
    },
    /// `tkc ingest <file> <events|-> ...`
    Ingest {
        /// Path of the base edge-list file.
        path: String,
        /// Path of the event stream (`u v t` per line), `-` for stdin.
        events: String,
        /// Time-interval shards of the base plan (the last is the live tail).
        shards: usize,
        /// Drive the stream through a CoreService ingest lane with this many
        /// workers (0 = absorb inline on the engine).
        workers: usize,
        /// Events per absorb batch.
        batch: usize,
        /// Seal the tail once it holds this many edges (0 = off).
        seal_edges: usize,
        /// Seal the tail once it spans this many timestamps (0 = off).
        seal_span: u32,
        /// Run this `k,start,end` query CSV against the live engine after
        /// the stream drains.
        queries: Option<String>,
        /// Print ingest-side cache/service counters.
        stats: bool,
        /// Lane routing of the service (`--affinity shared|shard`).
        affinity: Affinity,
    },
    /// `tkc serve <file> ...`
    Serve {
        /// Path of the edge-list file.
        path: String,
        /// Listen address (`HOST:PORT`; port 0 picks an ephemeral port).
        addr: String,
        /// Time-interval shards (0 = unsharded span-wide engine).
        shards: usize,
        /// Service worker threads (0 = one per CPU).
        workers: usize,
        /// Concurrently served connections (dedicated handler pool).
        conn_workers: usize,
        /// Bounded request-queue depth (0 = the service default).
        queue_depth: usize,
        /// Lane routing of the service (`--affinity shared|shard`).
        affinity: Affinity,
    },
    /// `tkc client <addr> ...`
    Client {
        /// Address of a running `tkc serve`.
        addr: String,
        /// The single request to send.
        action: ClientAction,
    },
    /// `tkc gen-events <count> <out|-> ...`
    GenEvents {
        /// Number of events to generate.
        count: usize,
        /// Output path, `-` for stdout.
        output: String,
        /// Vertex labels are drawn from `1..=vertices`.
        vertices: u64,
        /// Timestamps start strictly after this.
        start_after: u32,
        /// Arrival profile: `steady`, `bursty` or `jitter`.
        profile: String,
        /// RNG seed.
        seed: u64,
    },
    /// `tkc generate <profile> <out>`
    Generate {
        /// Profile name (e.g. `CM`).
        profile: String,
        /// Output edge-list path.
        output: String,
    },
    /// `tkc profiles`
    Profiles,
    /// `tkc help`
    Help,
}

/// Parses the command line (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "profiles" => Ok(Command::Profiles),
        "stats" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("stats requires an edge-list path".into()))?;
            Ok(Command::Stats { path: path.clone() })
        }
        "generate" => {
            let profile = it
                .next()
                .ok_or_else(|| CliError("generate requires a profile name".into()))?;
            let output = it
                .next()
                .ok_or_else(|| CliError("generate requires an output path".into()))?;
            Ok(Command::Generate {
                profile: profile.clone(),
                output: output.clone(),
            })
        }
        "ingest" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("ingest requires an edge-list path".into()))?
                .clone();
            let events = it
                .next()
                .ok_or_else(|| CliError("ingest requires an event stream path (or `-`)".into()))?
                .clone();
            let mut shards = 2usize;
            let mut workers = 0usize;
            let mut batch = 64usize;
            let mut seal_edges = 0usize;
            let mut seal_span = 0u32;
            let mut queries = None;
            let mut stats = false;
            let mut affinity = Affinity::Shard;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = |what: &str| -> Result<&String, CliError> {
                    rest.get(i + 1)
                        .copied()
                        .ok_or_else(|| CliError(format!("{what} requires a value")))
                };
                match flag {
                    "--shards" => {
                        shards = parse_num(value("--shards")?, "--shards")?;
                        if shards == 0 {
                            return Err(CliError(
                                "--shards: live ingestion needs at least 1 shard".into(),
                            ));
                        }
                        i += 1;
                    }
                    "--workers" => {
                        workers = parse_num(value("--workers")?, "--workers")?;
                        i += 1;
                    }
                    "--batch" => {
                        batch = parse_num(value("--batch")?, "--batch")?.max(1);
                        i += 1;
                    }
                    "--seal-edges" => {
                        seal_edges = parse_num(value("--seal-edges")?, "--seal-edges")?;
                        i += 1;
                    }
                    "--seal-span" => {
                        seal_span = parse_num(value("--seal-span")?, "--seal-span")? as u32;
                        i += 1;
                    }
                    "--queries" => {
                        queries = Some(value("--queries")?.clone());
                        i += 1;
                    }
                    "--affinity" => {
                        affinity = parse_affinity(value("--affinity")?)?;
                        i += 1;
                    }
                    "--stats" => stats = true,
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            if seal_edges > 0 && seal_span > 0 {
                return Err(CliError(
                    "--seal-edges and --seal-span are mutually exclusive".into(),
                ));
            }
            Ok(Command::Ingest {
                path,
                events,
                shards,
                workers,
                batch,
                seal_edges,
                seal_span,
                queries,
                stats,
                affinity,
            })
        }
        "serve" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("serve requires an edge-list path".into()))?
                .clone();
            let mut addr = String::from("127.0.0.1:7411");
            let mut shards = 0usize;
            let mut workers = 0usize;
            let mut conn_workers = 4usize;
            let mut queue_depth = 0usize;
            let mut affinity = Affinity::Shared;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = |what: &str| -> Result<&String, CliError> {
                    rest.get(i + 1)
                        .copied()
                        .ok_or_else(|| CliError(format!("{what} requires a value")))
                };
                match flag {
                    "--addr" => {
                        addr = value("--addr")?.clone();
                        i += 1;
                    }
                    "--shards" => {
                        shards = parse_num(value("--shards")?, "--shards")?;
                        i += 1;
                    }
                    "--workers" => {
                        workers = parse_num(value("--workers")?, "--workers")?;
                        i += 1;
                    }
                    "--conn-workers" => {
                        conn_workers = parse_num(value("--conn-workers")?, "--conn-workers")?;
                        if conn_workers == 0 {
                            return Err(CliError(
                                "--conn-workers: serving needs at least 1 connection handler"
                                    .into(),
                            ));
                        }
                        i += 1;
                    }
                    "--queue-depth" => {
                        queue_depth = parse_num(value("--queue-depth")?, "--queue-depth")?;
                        i += 1;
                    }
                    "--affinity" => {
                        affinity = parse_affinity(value("--affinity")?)?;
                        i += 1;
                    }
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            Ok(Command::Serve {
                path,
                addr,
                shards,
                workers,
                conn_workers,
                queue_depth,
                affinity,
            })
        }
        "client" => {
            let addr = it
                .next()
                .ok_or_else(|| CliError("client requires a server address (HOST:PORT)".into()))?
                .clone();
            let mut k: Option<usize> = None;
            let mut k_range: Option<(usize, usize)> = None;
            let mut start: Option<u32> = None;
            let mut end: Option<u32> = None;
            let mut lane = Lane::Interactive;
            let mut deadline_ms: Option<u64> = None;
            let mut algorithm: Option<Algorithm> = None;
            let mut output = OutputKind::Count;
            let mut op: Option<ClientAction> = None;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = |what: &str| -> Result<&String, CliError> {
                    rest.get(i + 1)
                        .copied()
                        .ok_or_else(|| CliError(format!("{what} requires a value")))
                };
                match flag {
                    "--ping" => op = Some(ClientAction::Ping),
                    "--stats" => op = Some(ClientAction::Stats),
                    "--shutdown" => op = Some(ClientAction::Shutdown),
                    "--k" => {
                        k = Some(parse_num(value("--k")?, "--k")?);
                        i += 1;
                    }
                    "--k-range" => {
                        k_range = Some(parse_k_range(value("--k-range")?)?);
                        i += 1;
                    }
                    "--start" => {
                        start = Some(parse_num(value("--start")?, "--start")? as u32);
                        i += 1;
                    }
                    "--end" => {
                        end = Some(parse_num(value("--end")?, "--end")? as u32);
                        i += 1;
                    }
                    "--lane" => {
                        lane = value("--lane")?
                            .parse::<Lane>()
                            .map_err(|e| CliError(format!("--lane: {e}")))?;
                        i += 1;
                    }
                    "--deadline-ms" => {
                        deadline_ms =
                            Some(parse_num(value("--deadline-ms")?, "--deadline-ms")? as u64);
                        i += 1;
                    }
                    "--algo" | "--algorithm" => {
                        algorithm = Some(value(flag)?.parse::<Algorithm>()?);
                        i += 1;
                    }
                    "--output" => {
                        output = match value("--output")?.as_str() {
                            "count" => OutputKind::Count,
                            "cores" | "full" => OutputKind::Full,
                            other => {
                                return Err(CliError(format!(
                                    "--output: `{other}` is not count or cores"
                                )))
                            }
                        };
                        i += 1;
                    }
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            let action = if let Some(op) = op {
                if k.is_some()
                    || k_range.is_some()
                    || start.is_some()
                    || end.is_some()
                    || deadline_ms.is_some()
                {
                    return Err(CliError(
                        "--ping/--stats/--shutdown do not take query flags".into(),
                    ));
                }
                op
            } else {
                let ks = match (k, k_range) {
                    (Some(_), Some(_)) => {
                        return Err(CliError("--k and --k-range are mutually exclusive".into()))
                    }
                    (Some(k), None) => KSpec::Single(k),
                    (None, Some((lo, hi))) => KSpec::Range(lo, hi),
                    (None, None) => {
                        return Err(CliError(
                            "client requires --k <K> or --k-range <MIN>..=<MAX> \
                             (or one of --ping, --stats, --shutdown)"
                                .into(),
                        ))
                    }
                };
                let start =
                    start.ok_or_else(|| CliError("client queries require --start <TS>".into()))?;
                let end =
                    end.ok_or_else(|| CliError("client queries require --end <TE>".into()))?;
                ClientAction::Query {
                    ks,
                    start,
                    end,
                    lane,
                    deadline_ms,
                    algorithm,
                    output,
                }
            };
            Ok(Command::Client { addr, action })
        }
        "gen-events" => {
            let count = parse_num(
                it.next()
                    .ok_or_else(|| CliError("gen-events requires an event count".into()))?,
                "gen-events count",
            )?;
            let output = it
                .next()
                .ok_or_else(|| CliError("gen-events requires an output path (or `-`)".into()))?
                .clone();
            let mut vertices = 100u64;
            let mut start_after = 0u32;
            let mut profile = String::from("steady");
            let mut seed = 42u64;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = |what: &str| -> Result<&String, CliError> {
                    rest.get(i + 1)
                        .copied()
                        .ok_or_else(|| CliError(format!("{what} requires a value")))
                };
                match flag {
                    "--vertices" => {
                        vertices = parse_num(value("--vertices")?, "--vertices")? as u64;
                        i += 1;
                    }
                    "--start-after" => {
                        start_after = parse_num(value("--start-after")?, "--start-after")? as u32;
                        i += 1;
                    }
                    "--profile" => {
                        profile = value("--profile")?.clone();
                        i += 1;
                    }
                    "--seed" => {
                        seed = parse_num(value("--seed")?, "--seed")? as u64;
                        i += 1;
                    }
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            Ok(Command::GenEvents {
                count,
                output,
                vertices,
                start_after,
                profile,
                seed,
            })
        }
        "batch" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("batch requires an edge-list path".into()))?
                .clone();
            let queries = it
                .next()
                .ok_or_else(|| CliError("batch requires a query CSV path".into()))?
                .clone();
            let mut algorithm = Algorithm::Enum;
            let mut threads = 0usize;
            let mut budget_mb = 256usize;
            let mut shards = 0usize;
            let mut workers = 0usize;
            let mut affinity = Affinity::Shared;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = |what: &str| -> Result<&String, CliError> {
                    rest.get(i + 1)
                        .copied()
                        .ok_or_else(|| CliError(format!("{what} requires a value")))
                };
                match flag {
                    "--algo" | "--algorithm" => {
                        algorithm = value(flag)?.parse::<Algorithm>()?;
                        i += 1;
                    }
                    "--threads" => {
                        threads = parse_num(value("--threads")?, "--threads")?;
                        i += 1;
                    }
                    "--budget-mb" => {
                        budget_mb = parse_num(value("--budget-mb")?, "--budget-mb")?;
                        if budget_mb == 0 {
                            return Err(CliError("--budget-mb must be at least 1".into()));
                        }
                        i += 1;
                    }
                    "--shards" => {
                        shards = parse_num(value("--shards")?, "--shards")?;
                        i += 1;
                    }
                    "--workers" => {
                        workers = parse_num(value("--workers")?, "--workers")?;
                        i += 1;
                    }
                    "--affinity" => {
                        affinity = parse_affinity(value("--affinity")?)?;
                        i += 1;
                    }
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            Ok(Command::Batch {
                path,
                queries,
                algorithm,
                threads,
                budget_mb,
                shards,
                workers,
                affinity,
            })
        }
        "query" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("query requires an edge-list path".into()))?
                .clone();
            let mut k: Option<usize> = None;
            let mut k_range: Option<(usize, usize)> = None;
            let mut start = None;
            let mut end = None;
            let mut algorithm = Algorithm::Enum;
            let mut output: Option<OutputKind> = None;
            let mut limit = 20usize;
            let mut shards = 0usize;
            let mut workers = 0usize;
            let mut affinity = Affinity::Shared;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = |what: &str| -> Result<&String, CliError> {
                    rest.get(i + 1)
                        .copied()
                        .ok_or_else(|| CliError(format!("{what} requires a value")))
                };
                match flag {
                    "--k" => {
                        k = Some(parse_num(value("--k")?, "--k")?);
                        i += 1;
                    }
                    "--k-range" => {
                        k_range = Some(parse_k_range(value("--k-range")?)?);
                        i += 1;
                    }
                    "--start" => {
                        start = Some(parse_num(value("--start")?, "--start")? as u32);
                        i += 1;
                    }
                    "--end" => {
                        end = Some(parse_num(value("--end")?, "--end")? as u32);
                        i += 1;
                    }
                    "--limit" => {
                        limit = parse_num(value("--limit")?, "--limit")?;
                        i += 1;
                    }
                    "--shards" => {
                        shards = parse_num(value("--shards")?, "--shards")?;
                        i += 1;
                    }
                    "--workers" => {
                        workers = parse_num(value("--workers")?, "--workers")?;
                        i += 1;
                    }
                    "--affinity" => {
                        affinity = parse_affinity(value("--affinity")?)?;
                        i += 1;
                    }
                    "--algo" | "--algorithm" => {
                        algorithm = value(flag)?.parse::<Algorithm>()?;
                        i += 1;
                    }
                    "--output" => {
                        output = Some(match value("--output")?.as_str() {
                            "count" => OutputKind::Count,
                            "full" => OutputKind::Full,
                            other => {
                                return Err(CliError(format!(
                                    "--output: `{other}` is not count or full"
                                )))
                            }
                        });
                        i += 1;
                    }
                    "--count-only" => output = Some(OutputKind::Count),
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            let ks = match (k, k_range) {
                (Some(_), Some(_)) => {
                    return Err(CliError("--k and --k-range are mutually exclusive".into()))
                }
                (Some(k), None) => KSpec::Single(k),
                (None, Some((lo, hi))) => KSpec::Range(lo, hi),
                (None, None) => {
                    return Err(CliError(
                        "query requires --k <K> or --k-range <MIN>..=<MAX>".into(),
                    ))
                }
            };
            Ok(Command::Query {
                path,
                ks,
                start,
                end,
                algorithm,
                output: output.unwrap_or(OutputKind::Full),
                limit,
                shards,
                workers,
                affinity,
            })
        }
        other => Err(CliError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn parse_num(s: &str, what: &str) -> Result<usize, CliError> {
    s.parse()
        .map_err(|_| CliError(format!("{what}: `{s}` is not a number")))
}

fn parse_affinity(s: &str) -> Result<Affinity, CliError> {
    s.parse()
        .map_err(|e: String| CliError(format!("--affinity: {e}")))
}

/// Parses an inclusive `k` range: `2..=5`, `2..5` or `2-5` all mean
/// `{2, 3, 4, 5}`.
fn parse_k_range(s: &str) -> Result<(usize, usize), CliError> {
    let (lo, hi) = s
        .split_once("..=")
        .or_else(|| s.split_once(".."))
        .or_else(|| s.split_once('-'))
        .ok_or_else(|| {
            CliError(format!(
                "--k-range: `{s}` is not of the form MIN..=MAX (e.g. 2..=5)"
            ))
        })?;
    let lo = parse_num(lo.trim(), "--k-range min")?;
    let hi = parse_num(hi.trim(), "--k-range max")?;
    if lo == 0 || lo > hi {
        return Err(CliError(format!(
            "--k-range: [{lo}, {hi}] is not a non-empty range of k >= 1"
        )));
    }
    Ok((lo, hi))
}

/// Parses a batch query CSV: one `k[,start,end]` query per line, blank lines
/// and `#` comments ignored.  `path` labels parse errors.
fn parse_query_csv(
    path: &str,
    content: &str,
    tmax: u32,
) -> Result<Vec<tkcore::TimeRangeKCoreQuery>, CliError> {
    let mut queries = Vec::new();
    for (lineno, raw) in content.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let err = |msg: String| CliError(format!("{path}, line {}: {msg}", lineno + 1));
        let k: usize = fields[0]
            .parse()
            .map_err(|_| err(format!("`{}` is not a valid k", fields[0])))?;
        let range = match fields.len() {
            1 => temporal_graph::TimeWindow::new(1, tmax.max(1)),
            3 => {
                let start: u32 = fields[1]
                    .parse()
                    .map_err(|_| err(format!("`{}` is not a valid start", fields[1])))?;
                let end: u32 = fields[2]
                    .parse()
                    .map_err(|_| err(format!("`{}` is not a valid end", fields[2])))?;
                if start > tmax {
                    return Err(err(format!(
                        "range starts at {start}, past the graph's last timestamp {tmax}"
                    )));
                }
                temporal_graph::TimeWindow::try_new(start, end)
                    .ok_or_else(|| err(format!("invalid range [{start}, {end}]")))?
            }
            n => {
                return Err(err(format!(
                    "expected `k` or `k,start,end`, got {n} fields"
                )))
            }
        };
        queries.push(tkcore::TimeRangeKCoreQuery::new(k, range).map_err(|e| err(e.to_string()))?);
    }
    if queries.is_empty() {
        return Err(CliError("query CSV contains no queries".into()));
    }
    Ok(queries)
}

/// Parses an event stream: one `u v t` triple per whitespace-separated line,
/// blank lines and `#` comments ignored.  `path` labels parse errors.
fn parse_event_lines(path: &str, content: &str) -> Result<Vec<IngestEvent>, CliError> {
    // A stream cut mid-line (a pipe hung up, a partial file write) ends
    // without a newline; when that final fragment is not a complete triple,
    // name the truncation — the caller must know events were lost in
    // transit, not merely mistyped.  A complete final triple without a
    // trailing newline is ordinary and still accepted.
    let truncated = !content.is_empty() && !content.ends_with('\n');
    let last_line = content.lines().count();
    let mut events = Vec::new();
    for (lineno, raw) in content.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| {
            if truncated && lineno + 1 == last_line {
                CliError(format!(
                    "{path}, line {}: truncated final event line ({msg}); the stream was \
                     cut mid-line, so no events were ingested",
                    lineno + 1
                ))
            } else {
                CliError(format!("{path}, line {}: {msg}", lineno + 1))
            }
        };
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(err(format!(
                "expected `u v t`, got {} fields",
                fields.len()
            )));
        }
        let u: u64 = fields[0]
            .parse()
            .map_err(|_| err(format!("`{}` is not a vertex label", fields[0])))?;
        let v: u64 = fields[1]
            .parse()
            .map_err(|_| err(format!("`{}` is not a vertex label", fields[1])))?;
        let t: u32 = fields[2]
            .parse()
            .map_err(|_| err(format!("`{}` is not a timestamp", fields[2])))?;
        events.push((u, v, t));
    }
    if events.is_empty() {
        return Err(CliError(format!("{path} contains no events")));
    }
    Ok(events)
}

/// Renders a [`ClientAction`] as one request line of the wire protocol
/// spoken by `tkc serve` (see `tkcore::wire`).
pub fn render_client_line(action: &ClientAction) -> String {
    match action {
        ClientAction::Ping => r#"{"op": "ping"}"#.to_string(),
        ClientAction::Stats => r#"{"op": "stats"}"#.to_string(),
        ClientAction::Shutdown => r#"{"op": "shutdown"}"#.to_string(),
        ClientAction::Query {
            ks,
            start,
            end,
            lane,
            deadline_ms,
            algorithm,
            output,
        } => {
            let mut line = String::from(r#"{"op": "query", "id": 1"#);
            match ks {
                KSpec::Single(k) => {
                    let _ = write!(line, r#", "k": {k}"#);
                }
                KSpec::Range(lo, hi) => {
                    let _ = write!(line, r#", "k_min": {lo}, "k_max": {hi}"#);
                }
            }
            let _ = write!(
                line,
                r#", "start": {start}, "end": {end}, "lane": "{lane}""#
            );
            if let Some(ms) = deadline_ms {
                let _ = write!(line, r#", "deadline_ms": {ms}"#);
            }
            if let Some(algo) = algorithm {
                // The server's parser folds case and separators either way.
                let _ = write!(
                    line,
                    r#", "algo": "{}""#,
                    algo.to_string().to_ascii_lowercase()
                );
            }
            let output = match output {
                OutputKind::Count => "count",
                OutputKind::Full => "cores",
            };
            let _ = write!(line, r#", "output": "{output}""#);
            line.push('}');
            line
        }
    }
}

/// Writes the per-query result table of `tkc batch`.
fn write_batch_rows(
    out: &mut String,
    queries: &[tkcore::TimeRangeKCoreQuery],
    rows: &[(u64, u64)],
) {
    let _ = writeln!(
        out,
        "{:<6} {:<14} {:>10} {:>12}",
        "k", "range", "cores", "|R| (edges)"
    );
    for (query, (cores, edges)) in queries.iter().zip(rows) {
        let _ = writeln!(
            out,
            "{:<6} {:<14} {:>10} {:>12}",
            query.k(),
            query.range().to_string(),
            cores,
            edges
        );
    }
}

/// Writes the aggregate timing line of an engine-side `tkc batch` run.
fn write_batch_summary(out: &mut String, algorithm: Algorithm, batch: &tkcore::BatchStats) {
    let _ = writeln!(
        out,
        "\n{}: {} queries on {} threads in {:?} ({} cores, |R| = {} edges)",
        algorithm,
        batch.num_queries,
        batch.threads,
        batch.wall_time,
        batch.total_cores,
        batch.total_result_edges
    );
    let _ = writeln!(
        out,
        "precompute {:?} + enumerate {:?} summed across workers",
        batch.precompute_time, batch.enumerate_time
    );
}

/// Writes the skyline-cache counters, with the per-shard build breakdown
/// when the engine is sharded.
fn write_cache_summary(out: &mut String, cache: &CacheStats) {
    let _ = writeln!(
        out,
        "index cache: {} hits, {} misses, {} evictions, {} indexes resident ({:.2} MiB)",
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.resident_indexes,
        cache.resident_bytes as f64 / (1024.0 * 1024.0)
    );
    write_shard_builds(out, cache);
}

/// Writes the per-shard build breakdown of a sharded engine's cache; a no-op
/// for the unsharded engine (whose `per_shard` is empty).
fn write_shard_builds(out: &mut String, cache: &CacheStats) {
    if !cache.per_shard.is_empty() {
        let builds: Vec<u64> = cache.per_shard.iter().map(|s| s.builds).collect();
        let _ = writeln!(
            out,
            "shard builds over {} shards: {:?}",
            cache.per_shard.len(),
            builds
        );
        let boundary = &cache.boundary;
        if boundary.builds + boundary.hits > 0 {
            let _ = writeln!(
                out,
                "boundary stitch index: {} builds, {} hits, {} entries resident ({:.2} MiB)",
                boundary.builds,
                boundary.hits,
                boundary.resident_entries,
                boundary.resident_bytes as f64 / (1024.0 * 1024.0)
            );
        }
    }
}

/// Writes the headline of a `tkc ingest` run.
#[allow(clippy::too_many_arguments)]
fn write_ingest_summary(
    out: &mut String,
    total: usize,
    appended: u64,
    rejected: u64,
    seals: u64,
    elapsed: std::time::Duration,
    watermark: u32,
    num_shards: usize,
    sealed_shards: usize,
) {
    let rate = appended as f64 / elapsed.as_secs_f64().max(1e-9);
    let _ = writeln!(
        out,
        "ingested {appended}/{total} events in {elapsed:?} ({rate:.0} events/s): \
         {rejected} rejected, {seals} seals"
    );
    let _ = writeln!(
        out,
        "timeline: watermark {watermark}, {num_shards} shards ({sealed_shards} sealed)"
    );
}

/// Writes the ingest-side counter movement plus the resulting cache state,
/// and the ingest-lane breakdown when the stream ran through a service.
fn write_ingest_stats(
    out: &mut String,
    before: &CacheStats,
    after: &CacheStats,
    service: Option<&tkcore::ServiceStats>,
) {
    let delta = IngestDelta::between(before, after);
    let _ = writeln!(
        out,
        "ingest invalidations: {} tail skylines, {} boundary entries, {} seals, \
         {} rebuilds, {:+} resident bytes",
        delta.tail_invalidations,
        delta.boundary_invalidations,
        delta.seals,
        delta.builds,
        delta.resident_bytes_delta
    );
    write_cache_summary(out, after);
    if let Some(stats) = service {
        let lane = &stats.ingest;
        let _ = writeln!(
            out,
            "ingest lane: {} submitted, {} completed, {} failed, {} events, {} seals, \
             absorb {:?}",
            lane.submitted,
            lane.completed,
            lane.failed,
            lane.events_appended,
            lane.seals,
            lane.absorb_total
        );
    }
}

/// Executes a parsed command, returning the text to print on stdout.
pub fn run(command: Command) -> Result<String, CliError> {
    let mut out = String::new();
    match command {
        Command::Help => out.push_str(USAGE),
        Command::Profiles => {
            let _ = writeln!(
                out,
                "{:<6} {:<14} {:>8} {:>8} {:>6}",
                "name", "paper dataset", "|V|", "|E|", "tmax"
            );
            for p in tkc_datasets::ALL_PROFILES {
                let _ = writeln!(
                    out,
                    "{:<6} {:<14} {:>8} {:>8} {:>6}",
                    p.name, p.paper_dataset, p.num_vertices, p.num_edges, p.num_timestamps
                );
            }
        }
        Command::Stats { path } => {
            let graph = temporal_graph::loader::read_edge_list(&path)?;
            let stats = DatasetStats::compute(&graph);
            let _ = writeln!(out, "file:      {path}");
            let _ = writeln!(out, "|V|:       {}", stats.num_vertices);
            let _ = writeln!(out, "|E|:       {}", stats.num_edges);
            let _ = writeln!(out, "tmax:      {}", stats.tmax);
            let _ = writeln!(out, "kmax:      {}", stats.kmax);
            let _ = writeln!(
                out,
                "avg deg:   {:.2}",
                graph.average_distinct_degree_in(graph.span())
            );
        }
        Command::Batch {
            path,
            queries,
            algorithm,
            threads,
            budget_mb,
            shards,
            workers,
            affinity,
        } => {
            let graph = temporal_graph::loader::read_edge_list(&path)?;
            let content = std::fs::read_to_string(&queries)
                .map_err(|e| CliError(format!("cannot read {queries}: {e}")))?;
            let parsed = parse_query_csv(&queries, &content, graph.tmax())?;
            let engine_config = tkcore::EngineConfig {
                memory_budget_bytes: budget_mb * 1024 * 1024,
                num_threads: threads,
                ..tkcore::EngineConfig::default()
            };
            if workers > 0 {
                // Submit every query as one request to a multi-worker
                // service; the queue is sized to hold the whole batch.
                let config = ServiceConfig {
                    queue_depth: parsed.len(),
                    workers,
                    affinity,
                    admission_memory_bytes: None,
                    engine: engine_config,
                };
                let service = if shards > 0 {
                    CoreService::start_sharded(graph, ShardPlan::FixedCount(shards), config)?
                } else {
                    CoreService::start(graph, config)
                };
                let tickets: Vec<tkcore::Ticket> = parsed
                    .iter()
                    .map(|query| {
                        let range = query.range();
                        service.submit_with(
                            QueryRequest::single(query.k(), range.start(), range.end()),
                            algorithm,
                        )
                    })
                    .collect::<Result<_, TkError>>()?;
                let mut rows = Vec::with_capacity(tickets.len());
                let mut total_cores = 0u64;
                let mut total_edges = 0u64;
                for ticket in tickets {
                    let reply = ticket.wait()?;
                    let KOutput::Counts(counts) = &reply.response.outcomes[0].output else {
                        unreachable!("batch requests use count mode");
                    };
                    total_cores += counts.num_cores;
                    total_edges += counts.total_edges;
                    rows.push((counts.num_cores, counts.total_edges));
                }
                write_batch_rows(&mut out, &parsed, &rows);
                let stats = service.stats();
                let _ = writeln!(
                    out,
                    "\n{}: {} queries via {} service workers ({} affinity; {} cores, |R| = {} edges)",
                    algorithm,
                    parsed.len(),
                    stats.per_worker.len(),
                    affinity,
                    total_cores,
                    total_edges
                );
                let per_worker: Vec<u64> = stats.per_worker.iter().map(|w| w.completed).collect();
                let _ = writeln!(
                    out,
                    "queue wait {:?} + execute {:?} summed; per-worker completed: {:?}",
                    stats.queue_wait_total, stats.execute_total, per_worker
                );
                write_cache_summary(&mut out, &service.cache_stats());
                service.shutdown();
            } else {
                let (results, batch) = if shards > 0 {
                    ShardedEngine::with_config(graph, ShardPlan::FixedCount(shards), engine_config)?
                        .run_batch_with(&parsed, algorithm, |_| CountingSink::default())?
                } else {
                    QueryEngine::with_config(graph, engine_config).run_batch_with(
                        &parsed,
                        algorithm,
                        |_| CountingSink::default(),
                    )?
                };
                let rows: Vec<(u64, u64)> = results
                    .iter()
                    .map(|(sink, _)| (sink.num_cores, sink.total_edges))
                    .collect();
                write_batch_rows(&mut out, &parsed, &rows);
                write_batch_summary(&mut out, algorithm, &batch);
                write_cache_summary(&mut out, &batch.cache);
            }
        }
        Command::Ingest {
            path,
            events,
            shards,
            workers,
            batch,
            seal_edges,
            seal_span,
            queries,
            stats,
            affinity,
        } => {
            let graph = temporal_graph::loader::read_edge_list(&path)?;
            let label = if events == "-" {
                "<stdin>".to_string()
            } else {
                events.clone()
            };
            let text = if events == "-" {
                use std::io::Read as _;
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| CliError(format!("cannot read stdin: {e}")))?;
                buf
            } else {
                std::fs::read_to_string(&events)
                    .map_err(|e| CliError(format!("cannot read {events}: {e}")))?
            };
            let stream = parse_event_lines(&label, &text)?;
            let query_csv = queries
                .map(|qpath| {
                    std::fs::read_to_string(&qpath)
                        .map_err(|e| CliError(format!("cannot read {qpath}: {e}")))
                        .map(|content| (qpath, content))
                })
                .transpose()?;
            let seal_policy = if seal_edges > 0 {
                SealPolicy::EdgeCount(seal_edges)
            } else if seal_span > 0 {
                SealPolicy::SpanWidth(seal_span)
            } else {
                SealPolicy::Manual
            };
            let engine_config = tkcore::EngineConfig {
                seal_policy,
                ..tkcore::EngineConfig::default()
            };
            let mut appended = 0u64;
            let mut rejected = 0u64;
            let mut seals = 0u64;
            if workers > 0 {
                let config = ServiceConfig {
                    queue_depth: query_csv
                        .as_ref()
                        .map_or(0, |(_, content)| content.lines().count())
                        .max(8),
                    workers,
                    affinity,
                    admission_memory_bytes: None,
                    engine: engine_config,
                };
                let service =
                    CoreService::start_sharded(graph, ShardPlan::FixedCount(shards), config)?;
                let before = service.cache_stats();
                let started = std::time::Instant::now();
                for chunk in stream.chunks(batch) {
                    match service.submit_append(chunk.to_vec()).and_then(|t| t.wait()) {
                        Ok(reply) => {
                            appended += reply.stats.appended as u64;
                            seals += u64::from(reply.stats.sealed);
                        }
                        Err(_) => {
                            // The batch was rejected wholesale (it contains an
                            // out-of-order or duplicate event); retry one event
                            // at a time so the good ones still land.
                            for &event in chunk {
                                match service.submit_append(vec![event]).and_then(|t| t.wait()) {
                                    Ok(reply) => {
                                        appended += reply.stats.appended as u64;
                                        seals += u64::from(reply.stats.sealed);
                                    }
                                    Err(_) => rejected += 1,
                                }
                            }
                        }
                    }
                }
                let (watermark, num_shards, sealed_shards) = {
                    let Some(engine) = service.sharded_engine() else {
                        return Err(CliError("ingest service lost its sharded engine".into()));
                    };
                    if matches!(seal_policy, SealPolicy::Manual) {
                        seals += u64::from(engine.seal_tail().sealed);
                    }
                    (
                        engine.watermark(),
                        engine.num_shards(),
                        engine.sealed_shards(),
                    )
                };
                let elapsed = started.elapsed();
                write_ingest_summary(
                    &mut out,
                    stream.len(),
                    appended,
                    rejected,
                    seals,
                    elapsed,
                    watermark,
                    num_shards,
                    sealed_shards,
                );
                if stats {
                    let service_stats = service.stats();
                    write_ingest_stats(
                        &mut out,
                        &before,
                        &service.cache_stats(),
                        Some(&service_stats),
                    );
                }
                if let Some((qpath, content)) = query_csv {
                    let parsed = parse_query_csv(&qpath, &content, watermark)?;
                    let tickets: Vec<tkcore::Ticket> = parsed
                        .iter()
                        .map(|query| {
                            let range = query.range();
                            service.submit_with(
                                QueryRequest::single(query.k(), range.start(), range.end()),
                                Algorithm::Enum,
                            )
                        })
                        .collect::<Result<_, TkError>>()?;
                    let mut rows = Vec::with_capacity(tickets.len());
                    for ticket in tickets {
                        let reply = ticket.wait()?;
                        let KOutput::Counts(counts) = &reply.response.outcomes[0].output else {
                            unreachable!("ingest follow-up queries use count mode");
                        };
                        rows.push((counts.num_cores, counts.total_edges));
                    }
                    let _ = writeln!(out, "\nlive queries over the ingested timeline:");
                    write_batch_rows(&mut out, &parsed, &rows);
                }
                service.shutdown();
            } else {
                let engine = Arc::new(ShardedEngine::with_config(
                    graph,
                    ShardPlan::FixedCount(shards),
                    engine_config,
                )?);
                let before = engine.cache_stats();
                let started = std::time::Instant::now();
                for chunk in stream.chunks(batch) {
                    match engine.absorb(chunk) {
                        Ok(s) => {
                            appended += s.appended as u64;
                            seals += u64::from(s.sealed);
                        }
                        Err(_) => {
                            for &event in chunk {
                                match engine.absorb(std::slice::from_ref(&event)) {
                                    Ok(s) => {
                                        appended += s.appended as u64;
                                        seals += u64::from(s.sealed);
                                    }
                                    Err(_) => rejected += 1,
                                }
                            }
                        }
                    }
                }
                if matches!(seal_policy, SealPolicy::Manual) {
                    seals += u64::from(engine.seal_tail().sealed);
                }
                let elapsed = started.elapsed();
                write_ingest_summary(
                    &mut out,
                    stream.len(),
                    appended,
                    rejected,
                    seals,
                    elapsed,
                    engine.watermark(),
                    engine.num_shards(),
                    engine.sealed_shards(),
                );
                if stats {
                    write_ingest_stats(&mut out, &before, &engine.cache_stats(), None);
                }
                if let Some((qpath, content)) = query_csv {
                    let parsed = parse_query_csv(&qpath, &content, engine.watermark())?;
                    let (results, _) = engine
                        .run_batch_with(&parsed, Algorithm::Enum, |_| CountingSink::default())?;
                    let rows: Vec<(u64, u64)> = results
                        .iter()
                        .map(|(sink, _)| (sink.num_cores, sink.total_edges))
                        .collect();
                    let _ = writeln!(out, "\nlive queries over the ingested timeline:");
                    write_batch_rows(&mut out, &parsed, &rows);
                }
            }
        }
        Command::Serve {
            path,
            addr,
            shards,
            workers,
            conn_workers,
            queue_depth,
            affinity,
        } => {
            let graph = temporal_graph::loader::read_edge_list(&path)?;
            let mut config = ServiceConfig {
                workers,
                affinity,
                ..ServiceConfig::default()
            };
            if queue_depth > 0 {
                config.queue_depth = queue_depth;
            }
            let service = Arc::new(if shards > 0 {
                CoreService::start_sharded(graph, ShardPlan::FixedCount(shards), config)?
            } else {
                CoreService::start(graph, config)
            });
            let server = TkServer::bind(
                Arc::clone(&service),
                addr.as_str(),
                ServerConfig {
                    connection_workers: conn_workers,
                    ..ServerConfig::default()
                },
            )?;
            // Announce readiness on stdout *before* blocking in the accept
            // loop, so scripts (and the CI smoke test) can synchronise on
            // this line instead of sleeping.
            println!("listening on {}", server.local_addr());
            let _ = std::io::Write::flush(&mut std::io::stdout());
            let summary = server.serve()?;
            let stats = service.stats();
            drop(server);
            // Dropping the service drains the queue; a second drain via an
            // explicit shutdown elsewhere would be a no-op.
            drop(service);
            let _ = writeln!(
                out,
                "drained after {} connections, {} request lines",
                summary.connections, summary.requests
            );
            for lane in [Lane::Interactive, Lane::Batch] {
                let counters = stats.lane(lane);
                let _ = writeln!(
                    out,
                    "{lane}: {} admitted, {} completed, {} shed, {} rejected",
                    counters.admitted, counters.completed, counters.shed, counters.rejected
                );
            }
        }
        Command::Client { addr, action } => {
            use std::io::{BufRead as _, Write as _};
            let line = render_client_line(&action);
            let stream = std::net::TcpStream::connect(&addr)
                .map_err(|e| CliError(format!("cannot connect to {addr}: {e}")))?;
            let mut writer = stream
                .try_clone()
                .map_err(|e| CliError(format!("cannot open the connection to {addr}: {e}")))?;
            writeln!(writer, "{line}")
                .and_then(|()| writer.flush())
                .map_err(|e| CliError(format!("cannot send to {addr}: {e}")))?;
            let mut reply = String::new();
            std::io::BufReader::new(stream)
                .read_line(&mut reply)
                .map_err(|e| CliError(format!("cannot read the reply from {addr}: {e}")))?;
            if reply.trim().is_empty() {
                return Err(CliError(format!(
                    "{addr} closed the connection without a reply"
                )));
            }
            // An error reply (shed, refused, failed) is data, not a
            // transport failure; print it and exit 0 either way.
            let _ = writeln!(out, "{}", reply.trim_end());
        }
        Command::GenEvents {
            count,
            output,
            vertices,
            start_after,
            profile,
            seed,
        } => {
            let profile = match profile.as_str() {
                "steady" => ArrivalProfile::Steady { events_per_tick: 4 },
                "bursty" => ArrivalProfile::Bursty {
                    burst: 16,
                    quiet_ticks: 3,
                },
                "jitter" => ArrivalProfile::OutOfOrderJitter {
                    events_per_tick: 4,
                    jitter: 3,
                },
                other => {
                    return Err(CliError(format!(
                        "--profile: `{other}` is not steady, bursty or jitter"
                    )))
                }
            };
            let events = EventStream::generate(&EventStreamConfig {
                num_events: count,
                num_vertices: vertices,
                start_after,
                profile,
                seed,
            });
            let mut text = String::with_capacity(events.len() * 12);
            for (u, v, t) in &events {
                let _ = writeln!(text, "{u} {v} {t}");
            }
            if output == "-" {
                out.push_str(&text);
            } else {
                std::fs::write(&output, &text)
                    .map_err(|e| CliError(format!("cannot write {output}: {e}")))?;
                let _ = writeln!(
                    out,
                    "wrote {} events after t={start_after} to {output}",
                    events.len()
                );
            }
        }
        Command::Generate { profile, output } => {
            let profile = DatasetProfile::by_name(&profile).ok_or_else(|| {
                CliError(format!("unknown profile `{profile}` (see `tkc profiles`)"))
            })?;
            let graph = profile.generate();
            temporal_graph::loader::write_edge_list(&graph, &output)?;
            let _ = writeln!(
                out,
                "wrote {} edges over {} vertices ({} timestamps) to {output}",
                graph.num_edges(),
                graph.num_vertices(),
                graph.tmax()
            );
        }
        Command::Query {
            path,
            ks,
            start,
            end,
            algorithm,
            output,
            limit,
            shards,
            workers,
            affinity,
        } => {
            let graph = temporal_graph::loader::read_edge_list(&path)?;
            let start = start.unwrap_or(1);
            let end = end.unwrap_or_else(|| graph.tmax());
            let request = match ks {
                KSpec::Single(k) => QueryRequest::single(k, start, end),
                KSpec::Range(lo, hi) => QueryRequest::sweep(lo..=hi, start, end),
            };
            let request = match output {
                OutputKind::Count => request.count(),
                OutputKind::Full => request.materialize(),
            };
            // A k-range sweep reuses one cached index per (shard and) k; a
            // single-k query without shards runs the algorithm directly.
            // --workers routes the request through a CoreService instead.
            let mut service_note = None;
            let (response, cache) = if workers > 0 {
                let config = ServiceConfig {
                    workers,
                    affinity,
                    ..ServiceConfig::default()
                };
                let service = if shards > 0 {
                    CoreService::start_sharded(
                        graph.clone(),
                        ShardPlan::FixedCount(shards),
                        config,
                    )?
                } else {
                    CoreService::start(graph.clone(), config)
                };
                let reply = service.submit_with(request, algorithm)?.wait()?;
                service_note = Some(format!(
                    "service: {} workers ({affinity} affinity), request {} queued {:?}, \
                     executed {:?} on worker {}",
                    workers.max(1),
                    reply.id,
                    reply.queue_wait,
                    reply.execute_time,
                    reply.worker
                ));
                let cache = service.cache_stats();
                service.shutdown();
                (reply.response, Some(cache))
            } else if shards > 0 {
                let engine = Arc::new(ShardedEngine::new(
                    graph.clone(),
                    ShardPlan::FixedCount(shards),
                )?);
                let backend = ShardedBackend::with_algorithm(Arc::clone(&engine), algorithm);
                let response = request.run(&engine.graph(), &backend)?;
                (response, Some(engine.cache_stats()))
            } else {
                match ks {
                    KSpec::Range(..) => {
                        let engine = Arc::new(QueryEngine::new(graph.clone()));
                        let backend = CachedBackend::with_algorithm(Arc::clone(&engine), algorithm);
                        // Run against the engine's own graph so the backend's
                        // O(1) identity fast path applies.
                        let response = request.run(engine.graph(), &backend)?;
                        (response, Some(engine.cache_stats()))
                    }
                    KSpec::Single(_) => {
                        (request.run(&graph, &algorithm as &dyn CoreBackend)?, None)
                    }
                }
            };
            for outcome in &response.outcomes {
                let k = outcome.k;
                match &outcome.output {
                    KOutput::Counts(counts) => {
                        let _ = writeln!(
                            out,
                            "{}: {} distinct temporal {}-cores in {}, |R| = {} edges ({:?})",
                            algorithm,
                            counts.num_cores,
                            k,
                            response.window,
                            counts.total_edges,
                            outcome.stats.total_time()
                        );
                    }
                    KOutput::Cores(cores) => {
                        let _ = writeln!(
                            out,
                            "{}: {} distinct temporal {}-cores in {} ({:?})",
                            algorithm,
                            cores.len(),
                            k,
                            response.window,
                            outcome.stats.total_time()
                        );
                        for core in cores.iter().take(limit) {
                            let _ = writeln!(
                                out,
                                "  TTI {:<12} {:>5} vertices {:>6} edges",
                                core.tti.to_string(),
                                core.vertices(&graph).len(),
                                core.num_edges()
                            );
                        }
                        if cores.len() > limit {
                            let _ = writeln!(
                                out,
                                "  ... and {} more (use --limit)",
                                cores.len() - limit
                            );
                        }
                    }
                    KOutput::Streamed => unreachable!("the CLI never requests streaming"),
                }
            }
            if let Some(note) = service_note {
                let _ = writeln!(out, "{note}");
            }
            if let Some(cache) = cache {
                let _ = writeln!(
                    out,
                    "index cache: {} misses over {} k values ({} hits)",
                    cache.misses,
                    response.outcomes.len(),
                    cache.hits
                );
                write_shard_builds(&mut out, &cache);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_help_and_profiles() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&strings(&["help"])).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&strings(&["profiles"])).unwrap(),
            Command::Profiles
        );
        assert!(run(Command::Help).unwrap().contains("USAGE"));
        assert!(run(Command::Profiles).unwrap().contains("CollegeMsg"));
    }

    #[test]
    fn parses_query_flags() {
        let cmd = parse_args(&strings(&[
            "query", "g.txt", "--k", "3", "--start", "2", "--end", "9", "--algo", "otcd",
            "--output", "count", "--limit", "5",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                path: "g.txt".into(),
                ks: KSpec::Single(3),
                start: Some(2),
                end: Some(9),
                algorithm: Algorithm::Otcd,
                output: OutputKind::Count,
                limit: 5,
                shards: 0,
                workers: 0,
                affinity: Affinity::Shared,
            }
        );
        // --algorithm and --count-only remain as aliases.
        let legacy = parse_args(&strings(&[
            "query",
            "g.txt",
            "--k",
            "3",
            "--algorithm",
            "enum-base",
            "--count-only",
        ]))
        .unwrap();
        assert_eq!(
            legacy,
            Command::Query {
                path: "g.txt".into(),
                ks: KSpec::Single(3),
                start: None,
                end: None,
                algorithm: Algorithm::EnumBase,
                output: OutputKind::Count,
                limit: 20,
                shards: 0,
                workers: 0,
                affinity: Affinity::Shared,
            }
        );
        // Sharded, service-backed execution with shard-affine routing.
        let sharded = parse_args(&strings(&[
            "query",
            "g.txt",
            "--k",
            "3",
            "--shards",
            "4",
            "--workers",
            "2",
            "--affinity",
            "shard",
        ]))
        .unwrap();
        assert_eq!(
            sharded,
            Command::Query {
                path: "g.txt".into(),
                ks: KSpec::Single(3),
                start: None,
                end: None,
                algorithm: Algorithm::Enum,
                output: OutputKind::Full,
                limit: 20,
                shards: 4,
                workers: 2,
                affinity: Affinity::Shard,
            }
        );
        assert!(parse_args(&strings(&[
            "query",
            "g.txt",
            "--k",
            "2",
            "--affinity",
            "wat"
        ]))
        .is_err());
    }

    #[test]
    fn parses_k_range_flag() {
        for spelled in ["2..=5", "2..5", "2-5", " 2 ..= 5 "] {
            let cmd = parse_args(&strings(&["query", "g.txt", "--k-range", spelled])).unwrap();
            assert_eq!(
                cmd,
                Command::Query {
                    path: "g.txt".into(),
                    ks: KSpec::Range(2, 5),
                    start: None,
                    end: None,
                    algorithm: Algorithm::Enum,
                    output: OutputKind::Full,
                    limit: 20,
                    shards: 0,
                    workers: 0,
                    affinity: Affinity::Shared,
                },
                "{spelled}"
            );
        }
        assert!(parse_args(&strings(&["query", "g.txt", "--k-range", "5..=2"])).is_err());
        assert!(parse_args(&strings(&["query", "g.txt", "--k-range", "0..=2"])).is_err());
        assert!(parse_args(&strings(&["query", "g.txt", "--k-range", "7"])).is_err());
        assert!(parse_args(&strings(&[
            "query",
            "g.txt",
            "--k",
            "2",
            "--k-range",
            "2..=3"
        ]))
        .is_err());
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(parse_args(&strings(&["query", "g.txt"])).is_err()); // missing --k
        assert!(parse_args(&strings(&["query", "g.txt", "--k", "x"])).is_err());
        assert!(parse_args(&strings(&["query", "g.txt", "--k", "2", "--algo", "magic"])).is_err());
        assert!(parse_args(&strings(&["query", "g.txt", "--k", "2", "--output", "wat"])).is_err());
        assert!(parse_args(&strings(&["frobnicate"])).is_err());
        assert!(parse_args(&strings(&["stats"])).is_err());
        assert!(parse_args(&strings(&["generate", "CM"])).is_err());
    }

    #[test]
    fn zero_k_is_a_rendered_tk_error_not_a_panic() {
        let dir = std::env::temp_dir().join("tkc-cli-zero-k");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fb.txt");
        let path_str = path.to_string_lossy().to_string();
        run(Command::Generate {
            profile: "FB".into(),
            output: path_str.clone(),
        })
        .unwrap();
        let err = run(Command::Query {
            path: path_str,
            ks: KSpec::Single(0),
            start: None,
            end: None,
            algorithm: Algorithm::Enum,
            output: OutputKind::Count,
            limit: 10,
            shards: 0,
            workers: 0,
            affinity: Affinity::Shared,
        })
        .unwrap_err();
        assert!(err.0.contains("k = 0"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_stats_query_round_trip() {
        let dir = std::env::temp_dir().join("tkc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fb.txt");
        let path_str = path.to_string_lossy().to_string();

        let out = run(Command::Generate {
            profile: "FB".into(),
            output: path_str.clone(),
        })
        .unwrap();
        assert!(out.contains("wrote"));

        let out = run(Command::Stats {
            path: path_str.clone(),
        })
        .unwrap();
        assert!(out.contains("kmax"));

        let out = run(Command::Query {
            path: path_str.clone(),
            ks: KSpec::Single(3),
            start: None,
            end: None,
            algorithm: Algorithm::Enum,
            output: OutputKind::Count,
            limit: 10,
            shards: 0,
            workers: 0,
            affinity: Affinity::Shared,
        })
        .unwrap();
        assert!(out.contains("distinct temporal 3-cores"));

        // A k-range sweep prints one line per k plus the cache summary, and
        // builds each index exactly once.
        let out = run(Command::Query {
            path: path_str.clone(),
            ks: KSpec::Range(2, 4),
            start: None,
            end: None,
            algorithm: Algorithm::Enum,
            output: OutputKind::Count,
            limit: 10,
            shards: 0,
            workers: 0,
            affinity: Affinity::Shared,
        })
        .unwrap();
        for k in 2..=4 {
            assert!(
                out.contains(&format!("distinct temporal {k}-cores")),
                "{out}"
            );
        }
        assert!(
            out.contains("index cache: 3 misses over 3 k values"),
            "{out}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_and_service_query_match_direct_execution() {
        let dir = std::env::temp_dir().join("tkc-cli-sharded-query");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fb.txt");
        let path_str = path.to_string_lossy().to_string();
        run(Command::Generate {
            profile: "FB".into(),
            output: path_str.clone(),
        })
        .unwrap();
        let query = |shards: usize, workers: usize, affinity: Affinity| {
            run(Command::Query {
                path: path_str.clone(),
                ks: KSpec::Single(3),
                start: None,
                end: None,
                algorithm: Algorithm::Enum,
                output: OutputKind::Count,
                limit: 10,
                shards,
                workers,
                affinity,
            })
            .unwrap()
        };
        let direct = query(0, 0, Affinity::Shared);
        let first_line = direct.lines().next().expect("count line present");
        // Strip the per-run timing suffix `(...)` before comparing.
        let direct_counts = first_line
            .rsplit_once(" (")
            .map(|(head, _)| head)
            .unwrap_or(first_line)
            .to_string();
        // Sharded, service-backed, and combined execution all report the
        // same counts line; the extra serving detail rides below it.
        let sharded = query(4, 0, Affinity::Shared);
        assert!(sharded.contains(&direct_counts), "{sharded}\n{direct}");
        assert!(sharded.contains("shard builds over 4 shards"), "{sharded}");
        let served = query(0, 2, Affinity::Shared);
        assert!(served.contains(&direct_counts), "{served}");
        assert!(served.contains("service: 2 workers"), "{served}");
        let both = query(4, 2, Affinity::Shard);
        assert!(both.contains(&direct_counts), "{both}");
        assert!(both.contains("shard builds over 4 shards"), "{both}");
        assert!(both.contains("shard affinity"), "{both}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_batch_flags() {
        let cmd = parse_args(&strings(&[
            "batch",
            "g.txt",
            "q.csv",
            "--algo",
            "enum-base",
            "--threads",
            "4",
            "--budget-mb",
            "64",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Batch {
                path: "g.txt".into(),
                queries: "q.csv".into(),
                algorithm: Algorithm::EnumBase,
                threads: 4,
                budget_mb: 64,
                shards: 0,
                workers: 0,
                affinity: Affinity::Shared,
            }
        );
        let sharded = parse_args(&strings(&[
            "batch",
            "g.txt",
            "q.csv",
            "--shards",
            "4",
            "--workers",
            "2",
            "--affinity",
            "shard",
        ]))
        .unwrap();
        assert_eq!(
            sharded,
            Command::Batch {
                path: "g.txt".into(),
                queries: "q.csv".into(),
                algorithm: Algorithm::Enum,
                threads: 0,
                budget_mb: 256,
                shards: 4,
                workers: 2,
                affinity: Affinity::Shard,
            }
        );
        assert!(parse_args(&strings(&["batch", "g.txt"])).is_err());
        assert!(parse_args(&strings(&["batch", "g.txt", "q.csv", "--budget-mb", "0"])).is_err());
        assert!(parse_args(&strings(&["batch", "g.txt", "q.csv", "--wat"])).is_err());
    }

    #[test]
    fn parse_query_csv_accepts_comments_and_span_queries() {
        let parsed =
            parse_query_csv("q.csv", "# header\n2,1,5\n\n3  # whole span\n2, 2, 2\n", 9).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].k(), 2);
        assert_eq!(parsed[0].range().to_string(), "[1, 5]");
        assert_eq!(parsed[1].range().to_string(), "[1, 9]");
        assert_eq!(parsed[2].range().to_string(), "[2, 2]");

        assert!(parse_query_csv("q.csv", "", 9).is_err());
        assert!(parse_query_csv("q.csv", "0,1,5", 9).is_err());
        assert!(parse_query_csv("q.csv", "2,5,1", 9).is_err());
        assert!(parse_query_csv("q.csv", "2,1", 9).is_err());
        assert!(parse_query_csv("q.csv", "x,1,5", 9).is_err());

        // A past-tmax row is caught at parse time with the offending line,
        // instead of failing the whole batch later without context.
        let err = parse_query_csv("q.csv", "2,1,5\n2,50,60\n", 9).unwrap_err();
        assert!(err.0.contains("line 2"), "{err}");
        assert!(err.0.contains("past the graph"), "{err}");
    }

    #[test]
    fn batch_round_trip_matches_per_query_runs() {
        let dir = std::env::temp_dir().join("tkc-cli-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("fb.txt");
        let graph_str = graph_path.to_string_lossy().to_string();
        run(Command::Generate {
            profile: "FB".into(),
            output: graph_str.clone(),
        })
        .unwrap();

        let csv_path = dir.join("queries.csv");
        std::fs::write(&csv_path, "3,1,120\n3,40,200\n2\n").unwrap();
        let out = run(Command::Batch {
            path: graph_str.clone(),
            queries: csv_path.to_string_lossy().to_string(),
            algorithm: Algorithm::Enum,
            threads: 2,
            budget_mb: 32,
            shards: 0,
            workers: 0,
            affinity: Affinity::Shared,
        })
        .unwrap();
        assert!(out.contains("3 queries"), "{out}");
        assert!(out.contains("index cache:"), "{out}");

        // Cross-check one query against the one-shot path.
        let graph = temporal_graph::loader::read_edge_list(&graph_str).unwrap();
        let mut sink = CountingSink::default();
        tkcore::TimeRangeKCoreQuery::new(3, temporal_graph::TimeWindow::new(1, 120))
            .unwrap()
            .run_with(&graph, Algorithm::Enum, &mut sink);
        let expected_row = format!(
            "{:<6} {:<14} {:>10} {:>12}",
            3, "[1, 120]", sink.num_cores, sink.total_edges
        );
        assert!(
            out.contains(expected_row.trim_end()),
            "missing `{expected_row}` in:\n{out}"
        );

        // The same batch through a 4-shard engine and through a 2-worker
        // service reports identical per-query rows.
        let sharded = run(Command::Batch {
            path: graph_str.clone(),
            queries: csv_path.to_string_lossy().to_string(),
            algorithm: Algorithm::Enum,
            threads: 2,
            budget_mb: 32,
            shards: 4,
            workers: 0,
            affinity: Affinity::Shared,
        })
        .unwrap();
        assert!(sharded.contains(expected_row.trim_end()), "{sharded}");
        assert!(sharded.contains("shard builds over 4 shards"), "{sharded}");

        let served = run(Command::Batch {
            path: graph_str.clone(),
            queries: csv_path.to_string_lossy().to_string(),
            algorithm: Algorithm::Enum,
            threads: 2,
            budget_mb: 32,
            shards: 4,
            workers: 2,
            affinity: Affinity::Shared,
        })
        .unwrap();
        assert!(served.contains(expected_row.trim_end()), "{served}");
        assert!(served.contains("via 2 service workers"), "{served}");
        assert!(served.contains("per-worker completed"), "{served}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_parses_flags_and_rejects_conflicting_seal_policies() {
        assert_eq!(
            parse_args(&strings(&[
                "ingest",
                "g.txt",
                "-",
                "--shards",
                "4",
                "--workers",
                "2",
                "--batch",
                "32",
                "--seal-edges",
                "100",
                "--stats",
            ]))
            .unwrap(),
            Command::Ingest {
                path: "g.txt".into(),
                events: "-".into(),
                shards: 4,
                workers: 2,
                batch: 32,
                seal_edges: 100,
                seal_span: 0,
                queries: None,
                stats: true,
                affinity: Affinity::Shard,
            }
        );
        assert!(parse_args(&strings(&[
            "ingest",
            "g.txt",
            "ev.txt",
            "--seal-edges",
            "10",
            "--seal-span",
            "5",
        ]))
        .is_err());
        assert!(parse_args(&strings(&["ingest", "g.txt", "ev.txt", "--shards", "0"])).is_err());
        assert!(parse_args(&strings(&["ingest", "g.txt"])).is_err());
        assert!(parse_args(&strings(&["gen-events", "ten", "-"])).is_err());
    }

    #[test]
    fn gen_events_streams_into_ingest_and_live_queries_see_the_appends() {
        let dir = std::env::temp_dir().join("tkc-cli-ingest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("fb.txt").to_string_lossy().to_string();
        run(Command::Generate {
            profile: "FB".into(),
            output: graph_path.clone(),
        })
        .unwrap();
        let base = temporal_graph::loader::read_edge_list(&graph_path).unwrap();

        // Generate a steady stream past the base graph's watermark.
        let events_path = dir.join("events.txt").to_string_lossy().to_string();
        let written = run(Command::GenEvents {
            count: 120,
            output: events_path.clone(),
            vertices: 60,
            start_after: base.tmax(),
            profile: "steady".into(),
            seed: 9,
        })
        .unwrap();
        assert!(written.contains("wrote 120 events"), "{written}");

        // `-` prints the stream instead; it must parse back.
        let stdout = run(Command::GenEvents {
            count: 10,
            output: "-".into(),
            vertices: 20,
            start_after: 5,
            profile: "bursty".into(),
            seed: 9,
        })
        .unwrap();
        assert_eq!(parse_event_lines("<stdout>", &stdout).unwrap().len(), 10);

        let queries_path = dir.join("queries.csv");
        std::fs::write(&queries_path, "2\n").unwrap();

        // Inline absorb with an edge-count seal policy.
        let out = run(Command::Ingest {
            path: graph_path.clone(),
            events: events_path.clone(),
            shards: 3,
            workers: 0,
            batch: 16,
            seal_edges: 50,
            seal_span: 0,
            queries: Some(queries_path.to_string_lossy().to_string()),
            stats: true,
            affinity: Affinity::Shard,
        })
        .unwrap();
        assert!(out.contains("ingested 120/120 events"), "{out}");
        assert!(out.contains("0 rejected"), "{out}");
        assert!(out.contains("seals"), "{out}");
        assert!(out.contains("ingest invalidations:"), "{out}");
        assert!(
            out.contains("live queries over the ingested timeline:"),
            "{out}"
        );

        // The same stream through a service's ingest lane, manual seal.
        let served = run(Command::Ingest {
            path: graph_path.clone(),
            events: events_path.clone(),
            shards: 3,
            workers: 2,
            batch: 16,
            seal_edges: 0,
            seal_span: 0,
            queries: Some(queries_path.to_string_lossy().to_string()),
            stats: true,
            affinity: Affinity::Shard,
        })
        .unwrap();
        assert!(served.contains("ingested 120/120 events"), "{served}");
        assert!(served.contains("ingest lane:"), "{served}");
        assert!(served.contains("1 seals"), "{served}");

        // A jittered stream contains out-of-order events: they are rejected
        // one by one while the in-order remainder still lands.
        let jitter_path = dir.join("jitter.txt").to_string_lossy().to_string();
        run(Command::GenEvents {
            count: 100,
            output: jitter_path.clone(),
            vertices: 40,
            start_after: base.tmax(),
            profile: "jitter".into(),
            seed: 4,
        })
        .unwrap();
        let jittered = run(Command::Ingest {
            path: graph_path.clone(),
            events: jitter_path,
            shards: 3,
            workers: 0,
            batch: 16,
            seal_edges: 0,
            seal_span: 0,
            queries: None,
            stats: false,
            affinity: Affinity::Shard,
        })
        .unwrap();
        let rejected: u64 = jittered
            .split(" rejected")
            .next()
            .and_then(|s| s.rsplit(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        assert!(rejected > 0, "{jittered}");
        assert!(!jittered.contains("ingested 0/"), "{jittered}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_serve_with_defaults_and_flags() {
        assert_eq!(
            parse_args(&strings(&["serve", "g.txt"])).unwrap(),
            Command::Serve {
                path: "g.txt".into(),
                addr: "127.0.0.1:7411".into(),
                shards: 0,
                workers: 0,
                conn_workers: 4,
                queue_depth: 0,
                affinity: Affinity::Shared,
            }
        );
        assert_eq!(
            parse_args(&strings(&[
                "serve",
                "g.txt",
                "--addr",
                "127.0.0.1:0",
                "--shards",
                "3",
                "--workers",
                "2",
                "--conn-workers",
                "8",
                "--queue-depth",
                "16",
                "--affinity",
                "shard",
            ]))
            .unwrap(),
            Command::Serve {
                path: "g.txt".into(),
                addr: "127.0.0.1:0".into(),
                shards: 3,
                workers: 2,
                conn_workers: 8,
                queue_depth: 16,
                affinity: Affinity::Shard,
            }
        );
        assert!(parse_args(&strings(&["serve", "g.txt", "--conn-workers", "0"])).is_err());
    }

    #[test]
    fn parses_client_queries_and_ops() {
        assert_eq!(
            parse_args(&strings(&[
                "client",
                "127.0.0.1:7411",
                "--k",
                "2",
                "--start",
                "1",
                "--end",
                "9",
                "--lane",
                "batch",
                "--deadline-ms",
                "250",
            ]))
            .unwrap(),
            Command::Client {
                addr: "127.0.0.1:7411".into(),
                action: ClientAction::Query {
                    ks: KSpec::Single(2),
                    start: 1,
                    end: 9,
                    lane: Lane::Batch,
                    deadline_ms: Some(250),
                    algorithm: None,
                    output: OutputKind::Count,
                },
            }
        );
        assert_eq!(
            parse_args(&strings(&["client", "localhost:7411", "--shutdown"])).unwrap(),
            Command::Client {
                addr: "localhost:7411".into(),
                action: ClientAction::Shutdown,
            }
        );
        // A query needs k and an explicit range; ops reject query flags.
        assert!(parse_args(&strings(&["client", "h:1", "--k", "2"])).is_err());
        assert!(parse_args(&strings(&["client", "h:1"])).is_err());
        assert!(parse_args(&strings(&["client", "h:1", "--ping", "--k", "2"])).is_err());
        assert!(parse_args(&strings(&["client", "h:1", "--lane", "express"])).is_err());
    }

    #[test]
    fn client_lines_follow_the_wire_protocol() {
        assert_eq!(render_client_line(&ClientAction::Ping), r#"{"op": "ping"}"#);
        let line = render_client_line(&ClientAction::Query {
            ks: KSpec::Range(2, 4),
            start: 1,
            end: 9,
            lane: Lane::Batch,
            deadline_ms: Some(250),
            algorithm: Some(Algorithm::Enum),
            output: OutputKind::Full,
        });
        assert_eq!(
            line,
            r#"{"op": "query", "id": 1, "k_min": 2, "k_max": 4, "start": 1, "end": 9, "lane": "batch", "deadline_ms": 250, "algo": "enum", "output": "cores"}"#
        );
    }

    #[test]
    fn a_truncated_final_event_line_is_a_typed_error() {
        let err = parse_event_lines("<stdin>", "1 2 101\n3 4").unwrap_err();
        assert!(err.0.contains("truncated final event line"), "{}", err.0);
        assert!(err.0.contains("line 2"), "{}", err.0);
        // The same defect mid-stream is an ordinary parse error...
        let err = parse_event_lines("<stdin>", "1 2\n3 4 102\n").unwrap_err();
        assert!(!err.0.contains("truncated"), "{}", err.0);
        // ...and a complete final triple without a trailing newline is fine.
        let events = parse_event_lines("<stdin>", "1 2 101\n3 4 102").unwrap();
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn unknown_profile_and_missing_file_are_errors() {
        assert!(run(Command::Generate {
            profile: "NOPE".into(),
            output: "/tmp/x.txt".into()
        })
        .is_err());
        assert!(run(Command::Stats {
            path: "/definitely/missing.txt".into()
        })
        .is_err());
    }
}
