//! `tkc` — command-line front end for time-range temporal k-core queries.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match tkc_cli::parse_args(&args).and_then(tkc_cli::run) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
