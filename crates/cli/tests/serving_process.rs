//! End-to-end process tests of the serving commands, driving the real
//! `tkc` binary:
//!
//! * `tkc ingest - ` fed a stdin stream cut mid-line exits nonzero with a
//!   typed "truncated final event line" error — never a panic, never a
//!   silent drop;
//! * `tkc serve` on an ephemeral port announces `listening on <addr>`,
//!   answers `tkc client` pings, queries, deadline-expired requests (an
//!   error *reply*, exit 0) and stats, then drains gracefully on
//!   `tkc client --shutdown` and exits 0.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_tkc");
const GRAPH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../data/paper_example.txt");

fn run_client(addr: &str, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(BIN)
        .args(["client", addr])
        .args(args)
        .output()
        .expect("client runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Kills `child` and fails with its captured output when an assertion
/// about the live server has already failed.
fn kill(mut child: Child) {
    let _ = child.kill();
    let _ = child.wait();
}

#[test]
fn truncated_stdin_ingest_exits_nonzero_with_a_typed_error() {
    let mut child = Command::new(BIN)
        .args(["ingest", GRAPH, "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("ingest spawns");
    // A stream cut mid-line: the final triple is missing its timestamp.
    child
        .stdin
        .take()
        .expect("stdin is piped")
        .write_all(b"1 2 101\n3 4")
        .expect("write the truncated stream");
    let out = child.wait_with_output().expect("ingest exits");
    assert!(
        !out.status.success(),
        "a truncated stream must fail: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains("truncated final event line"), "{stderr}");
    assert!(stderr.contains("<stdin>, line 2"), "{stderr}");
}

#[test]
fn serve_round_trips_with_the_client_and_drains_on_shutdown() {
    let mut server = Command::new(BIN)
        .args(["serve", GRAPH, "--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("server spawns");
    // The readiness line carries the resolved ephemeral address.
    let mut stdout = BufReader::new(server.stdout.take().expect("stdout is piped"));
    let mut ready = String::new();
    stdout.read_line(&mut ready).expect("readiness line");
    let Some(addr) = ready.trim().strip_prefix("listening on ") else {
        kill(server);
        panic!("unexpected readiness line: {ready:?}");
    };
    let addr = addr.to_string();

    // Liveness, a served query, a shed request and the stats op — each a
    // fresh connection, all exit 0 (error replies are data).
    for (args, needle) in [
        (vec!["--ping"], r#""op":"ping""#),
        (
            vec!["--k", "2", "--start", "1", "--end", "4"],
            r#""outcomes":[{"k":2,"cores":2"#,
        ),
        (
            vec![
                "--k",
                "2",
                "--start",
                "1",
                "--end",
                "4",
                "--lane",
                "batch",
                "--deadline-ms",
                "0",
            ],
            r#""error":"DeadlineExceeded""#,
        ),
        (vec!["--stats"], r#""lanes":{"interactive""#),
    ] {
        let (ok, out, err) = run_client(&addr, &args);
        if !ok || !out.contains(needle) {
            kill(server);
            panic!("client {args:?} failed: stdout {out:?}, stderr {err:?}");
        }
    }

    // Graceful drain: the shutdown op is acked and the server process
    // exits 0 with the drain summary on stdout.
    let (ok, out, err) = run_client(&addr, &["--shutdown"]);
    if !ok || !out.contains(r#""op":"shutdown""#) {
        kill(server);
        panic!("shutdown failed: stdout {out:?}, stderr {err:?}");
    }
    let status = server.wait().expect("server exits");
    assert!(status.success(), "drain exits 0, got {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stdout, &mut rest).expect("summary");
    assert!(rest.contains("drained after"), "{rest}");
    assert!(rest.contains("interactive:"), "{rest}");
    assert!(rest.contains("batch:"), "{rest}");
}
