//! Workspace symbol table: every `fn`, with its crate, module path and
//! impl self type.
//!
//! This is the name-resolution substrate of the interprocedural stage (see
//! [`crate::callgraph`]).  It is deliberately *syntactic*: built from the
//! same token stream the rules already run over, with no type information.
//! For each [`crate::scan::FnSpan`] the builder reconstructs the lexical scope chain —
//! enclosing `mod` blocks and the self type of the enclosing `impl` block —
//! which is enough for the conservative suffix-resolution strategy the call
//! graph uses (documented in `crates/lint/README.md`).

use crate::lexer::{Token, TokenKind};
use crate::scan::FileModel;
use std::collections::BTreeMap;

/// One function known to the workspace.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Index of the owning file in the slice passed to
    /// [`SymbolTable::build`].
    pub file: usize,
    /// Index of the matching span in `files[file].fns`.
    pub span: usize,
    /// Owning crate directory name (`tkcore`, `cli`, ...).
    pub crate_name: String,
    /// Names of the enclosing `mod` blocks, outermost first.  Inline
    /// modules only: file-level module structure is approximated by the
    /// file path, which the resolution strategy never needs.
    pub module_path: Vec<String>,
    /// Self type of the enclosing `impl` block, if any (`EdgeCoreSkyline`
    /// for both `impl EdgeCoreSkyline` and `impl Iterator for
    /// EdgeCoreSkyline`).
    pub self_type: Option<String>,
    /// Bare function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub decl_line: u32,
    /// Whether the first parameter is (a borrow of) `self` — i.e. the
    /// function is callable with method syntax.
    pub has_self: bool,
    /// Whether the function lives in test code (test file or test region).
    pub is_test: bool,
    /// Whether a `// tkc-lint: hot` marker covers the declaration line.
    pub is_hot: bool,
}

impl FnInfo {
    /// Human-readable qualified name: `crate::module::Type::name`.
    pub fn qualified(&self) -> String {
        let mut parts: Vec<&str> = vec![self.crate_name.as_str()];
        parts.extend(self.module_path.iter().map(String::as_str));
        if let Some(ty) = &self.self_type {
            parts.push(ty);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

/// Every function in the workspace, indexed by bare name.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All functions, in (file, declaration) order.  Indexes into this
    /// vector are the node ids of the call graph.
    pub fns: Vec<FnInfo>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Builds the table from scanned files (compat crates excluded — they
    /// mirror external APIs and must not capture resolutions).
    pub fn build(files: &[FileModel]) -> Self {
        let mut table = Self::default();
        for (file_idx, file) in files.iter().enumerate() {
            if file.kind == crate::scan::CrateKind::Compat {
                continue;
            }
            collect_file(&mut table, file_idx, file);
        }
        for (id, info) in table.fns.iter().enumerate() {
            table.by_name.entry(info.name.clone()).or_default().push(id);
        }
        table
    }

    /// Ids of every function named `name`, in declaration order.
    pub fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A lexical scope the walker is currently inside.
enum Scope {
    /// `mod name { ... }` — closes at the token index held alongside.
    Mod(String, usize),
    /// `impl [Trait for] Type { ... }`.
    Impl(Option<String>, usize),
}

/// Walks one file's token stream, attaching scope context to each `FnSpan`.
fn collect_file(table: &mut SymbolTable, file_idx: usize, file: &FileModel) {
    let code = &file.code;
    let mut scopes: Vec<Scope> = Vec::new();
    // `fns` is in declaration order (see `scan::find_fns`).
    let mut next_fn = 0usize;
    let mut i = 0usize;
    while i < code.len() {
        while let Some(scope) = scopes.last() {
            let close = match scope {
                Scope::Mod(_, close) | Scope::Impl(_, close) => *close,
            };
            if i > close {
                scopes.pop();
            } else {
                break;
            }
        }
        // Attach any fn declared at or before this token (the walker can
        // step over several tokens at once when opening a scope).
        while next_fn < file.fns.len() && file.fns[next_fn].decl_index <= i {
            let span = &file.fns[next_fn];
            let module_path = scopes
                .iter()
                .filter_map(|s| match s {
                    Scope::Mod(name, _) => Some(name.clone()),
                    Scope::Impl(..) => None,
                })
                .collect();
            let self_type = scopes.iter().rev().find_map(|s| match s {
                Scope::Impl(ty, _) => ty.clone(),
                Scope::Mod(..) => None,
            });
            table.fns.push(FnInfo {
                file: file_idx,
                span: next_fn,
                crate_name: file.crate_name.clone(),
                module_path,
                self_type,
                name: span.name.clone(),
                decl_line: span.decl_line,
                has_self: has_self_receiver(code, span.decl_index),
                is_test: file.is_test_file || file.in_test[span.decl_index],
                is_hot: file.hot_lines.contains(&span.decl_line),
            });
            next_fn += 1;
        }
        // Open new scopes.
        if code[i].text == "mod"
            && code.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            && code.get(i + 2).is_some_and(|t| t.text == "{")
        {
            if let Some(close) = matching_brace(code, i + 2) {
                scopes.push(Scope::Mod(code[i + 1].text.clone(), close));
                i += 3;
                continue;
            }
        }
        if code[i].text == "impl" && (i == 0 || code[i - 1].text != ".") {
            if let Some((ty, body_open)) = impl_self_type(code, i) {
                if let Some(close) = matching_brace(code, body_open) {
                    scopes.push(Scope::Impl(ty, close));
                    i = body_open + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, token) in code.iter().enumerate().skip(open) {
        if token.text == "{" {
            depth += 1;
        } else if token.text == "}" {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Parses the header of an `impl` block starting at `start` and names its
/// self type: the last angle-depth-0 identifier of the type segment (after
/// a top-level `for` when the impl is a trait impl), stopping at `where`.
/// Returns the type (if one could be named) and the index of the body `{`.
fn impl_self_type(code: &[Token], start: usize) -> Option<(Option<String>, usize)> {
    // The header runs to the first `{`: where-clauses contain no braces.
    let mut body_open = None;
    for (j, token) in code.iter().enumerate().skip(start + 1) {
        if token.text == "{" {
            body_open = Some(j);
            break;
        }
        if token.text == ";" {
            return None; // `impl Foo;` — not a block
        }
    }
    let body_open = body_open?;
    let header = &code[start + 1..body_open];
    // Split at a `for` outside angle brackets (`impl Trait for Type`),
    // tracking `<`/`>` depth and skipping `->` arrows.
    let mut depth = 0i32;
    let mut type_from = 0usize;
    let mut j = 0usize;
    while j < header.len() {
        match header[j].text.as_str() {
            "<" => depth += 1,
            ">" => depth = (depth - 1).max(0),
            "-" if header.get(j + 1).is_some_and(|t| t.text == ">") => j += 1,
            "for" if depth == 0 => type_from = j + 1,
            "where" if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    // If there was no `for`, skip the leading generic parameter list.
    if type_from == 0 && header.first().is_some_and(|t| t.text == "<") {
        let mut depth = 0i32;
        for (k, token) in header.iter().enumerate() {
            match token.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        type_from = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    // Name = last angle-depth-0 identifier of the type segment.
    let mut depth = 0i32;
    let mut name = None;
    let mut j = type_from;
    while j < header.len() {
        match header[j].text.as_str() {
            "<" => depth += 1,
            ">" => depth = (depth - 1).max(0),
            "-" if header.get(j + 1).is_some_and(|t| t.text == ">") => j += 1,
            "where" if depth == 0 => break,
            _ => {
                if depth == 0 && header[j].kind == TokenKind::Ident {
                    name = Some(header[j].text.clone());
                }
            }
        }
        j += 1;
    }
    Some((name, body_open))
}

/// Whether the fn declared at `decl_index` takes `self` (incl. `&self`,
/// `&'a mut self`, `mut self`) as its first parameter.
fn has_self_receiver(code: &[Token], decl_index: usize) -> bool {
    // Find the parameter list `(`: first paren after the name, skipping a
    // generic parameter list (angle-depth tracked, `->` arrows skipped).
    let mut j = decl_index + 2;
    let mut depth = 0i32;
    while j < code.len() {
        match code[j].text.as_str() {
            "<" => depth += 1,
            ">" => depth = (depth - 1).max(0),
            "-" if code.get(j + 1).is_some_and(|t| t.text == ">") => j += 1,
            "(" if depth == 0 => break,
            "{" | ";" => return false,
            _ => {}
        }
        j += 1;
    }
    let mut k = j + 1;
    while k < code.len() {
        match code[k].kind {
            TokenKind::Lifetime => k += 1,
            _ if matches!(code[k].text.as_str(), "&" | "mut") => k += 1,
            _ => return code[k].text == "self",
        }
    }
    false
}
