//! The rule set and the engine that applies it.
//!
//! Every rule is grounded in a real invariant of the serving stack (see the
//! "Workspace invariants" section of `tkcore`'s crate docs and
//! `crates/lint/README.md` for the rationale):
//!
//! | rule | invariant |
//! |---|---|
//! | `no-raw-threads` | all fan-out goes through `tkcore::exec::ExecPool`; `thread::{spawn, scope, Builder}` only in `exec.rs` |
//! | `poison-safe-locks` | library code never `.lock().unwrap()`s; it recovers poison via `tkcore::sync::lock` |
//! | `no-panic-api` | non-test `tkcore`/`temporal-graph` code returns `TkError`, it does not `unwrap`/`panic!` |
//! | `lock-order` | the intraprocedural nested-lock graph over named lock sites is acyclic (no ABBA deadlocks) |
//! | `lock-order-global` | the same graph extended with held-lock propagation across calls stays acyclic (see [`crate::interproc`]) |
//! | `no-blocking-in-worker` | nothing reachable from an `ExecPool` task closure blocks (`Ticket::wait`, `Condvar::wait`, `JoinHandle::join`, `sync::wait`) |
//! | `hot-path-alloc` | `// tkc-lint: hot` functions and everything reachable from them allocate nothing per call |
//! | `no-println` | library crates never write to stdout/stderr; reporting belongs to the CLI |
//! | `forbid-unsafe` | every non-compat crate root carries `#![forbid(unsafe_code)]` |
//!
//! A finding on a line covered by a matching
//! `// tkc-lint: allow(<rule>) — <justification>` pragma is *suppressed*
//! (still reported, not counted as a failure); a pragma without a
//! justification is itself a finding (`pragma` rule).

use crate::scan::{CrateKind, FileModel};
use std::collections::{BTreeMap, BTreeSet};

/// Names of every rule the engine knows, in report order.
pub const RULES: &[&str] = &[
    "no-raw-threads",
    "poison-safe-locks",
    "no-panic-api",
    "lock-order",
    "lock-order-global",
    "no-blocking-in-worker",
    "hot-path-alloc",
    "no-println",
    "forbid-unsafe",
    "pragma",
];

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// `Some(justification)` when a pragma suppresses the finding.
    pub suppressed: Option<String>,
}

/// Runs every rule over `files` (one workspace), returning findings sorted
/// by path, line, rule.
pub fn check(files: &[FileModel]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut lock_graph = LockGraph::default();
    for file in files {
        if file.kind == CrateKind::Compat {
            continue;
        }
        check_raw_threads(file, &mut findings);
        check_poison_safe_locks(file, &mut findings);
        check_panic_api(file, &mut findings);
        check_println(file, &mut findings);
        check_forbid_unsafe(file, &mut findings);
        check_pragmas(file, &mut findings);
        lock_graph.collect(file);
    }
    lock_graph.report(files, &mut findings);
    // The interprocedural stage: symbol table → call graph → the three
    // cross-function rules (see `crate::interproc`).
    let symtab = crate::symtab::SymbolTable::build(files);
    let graph = crate::callgraph::CallGraph::build(files, &symtab);
    crate::interproc::check_interprocedural(files, &symtab, &graph, &mut findings);
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule)
            .partial_cmp(&(&b.path, b.line, b.rule))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    findings
}

/// Emits `finding` unless a pragma on its line suppresses it.
fn emit(
    file: &FileModel,
    findings: &mut Vec<Finding>,
    rule: &'static str,
    line: u32,
    message: String,
) {
    let suppressed = file.pragma_for(line, rule).map(|p| p.justification.clone());
    findings.push(Finding {
        rule,
        path: file.path.display().to_string(),
        line,
        message,
        suppressed,
    });
}

/// Is code token `i` production code for rule purposes?
fn is_production(file: &FileModel, i: usize) -> bool {
    !file.is_test_file && !file.in_test[i]
}

/// `no-raw-threads`: `thread::spawn` / `thread::scope` / `thread::Builder`
/// anywhere outside `tkcore/src/exec.rs` — all fan-out goes through the
/// shared `ExecPool`, so panic isolation, nested-batch deadlock freedom and
/// the service's lane accounting hold everywhere by construction.
fn check_raw_threads(file: &FileModel, findings: &mut Vec<Finding>) {
    if file.path.ends_with("tkcore/src/exec.rs") {
        return; // the one place allowed to own OS threads
    }
    let code = &file.code;
    for i in 0..code.len().saturating_sub(3) {
        if !is_production(file, i) {
            continue;
        }
        if code[i].text == "thread"
            && code[i + 1].text == ":"
            && code[i + 2].text == ":"
            && matches!(code[i + 3].text.as_str(), "spawn" | "scope" | "Builder")
        {
            emit(
                file,
                findings,
                "no-raw-threads",
                code[i].line,
                format!(
                    "raw `thread::{}` outside tkcore/src/exec.rs: route fan-out through \
                     `tkcore::exec::ExecPool` (panic isolation + deadlock-free nesting)",
                    code[i + 3].text
                ),
            );
        }
    }
}

/// `poison-safe-locks`: `.lock().unwrap()` / `.lock().expect(..)` in library
/// crates.  A panicking task can unwind while holding any internal mutex;
/// unwrapping the lock result turns that one contained panic into a
/// permanently poisoned lock for every later caller.
fn check_poison_safe_locks(file: &FileModel, findings: &mut Vec<Finding>) {
    if file.kind != CrateKind::Library {
        return;
    }
    let code = &file.code;
    for i in 0..code.len().saturating_sub(5) {
        if !is_production(file, i) {
            continue;
        }
        if code[i].text == "."
            && code[i + 1].text == "lock"
            && code[i + 2].text == "("
            && code[i + 3].text == ")"
            && code[i + 4].text == "."
            && matches!(code[i + 5].text.as_str(), "unwrap" | "expect")
        {
            emit(
                file,
                findings,
                "poison-safe-locks",
                code[i + 1].line,
                format!(
                    "bare `.lock().{}(..)` poisons forever after one panic: use \
                     `tkcore::sync::lock(&mutex)` (recovers the guard)",
                    code[i + 5].text
                ),
            );
        }
    }
}

/// `no-panic-api`: `unwrap` / `expect` / `panic!` / `unreachable!` /
/// `todo!` / `unimplemented!` in non-test `tkcore` / `temporal-graph` code.
/// Public paths return `TkError`; an intentional invariant needs a pragma
/// stating why it cannot fire.
fn check_panic_api(file: &FileModel, findings: &mut Vec<Finding>) {
    if !matches!(file.crate_name.as_str(), "tkcore" | "temporal-graph") {
        return;
    }
    let code = &file.code;
    for i in 0..code.len() {
        if !is_production(file, i) {
            continue;
        }
        // .unwrap( / .expect( method calls.
        if i + 2 < code.len()
            && code[i].text == "."
            && matches!(code[i + 1].text.as_str(), "unwrap" | "expect")
            && code[i + 2].text == "("
        {
            emit(
                file,
                findings,
                "no-panic-api",
                code[i + 1].line,
                format!(
                    "`.{}(..)` in library code: return `TkError` on public paths, or add \
                     `// tkc-lint: allow(no-panic-api) — <why this cannot fire>`",
                    code[i + 1].text
                ),
            );
        }
        // panic-family macros.
        if i + 1 < code.len()
            && matches!(
                code[i].text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && code[i + 1].text == "!"
            && (i == 0 || code[i - 1].text != ".")
        {
            emit(
                file,
                findings,
                "no-panic-api",
                code[i].line,
                format!(
                    "`{}!` in library code: return `TkError` on public paths, or add \
                     `// tkc-lint: allow(no-panic-api) — <why this cannot fire>`",
                    code[i].text
                ),
            );
        }
    }
}

/// `no-println`: stdout/stderr macros in library crates — reporting belongs
/// to the CLI and the bench harness, not to code running inside the service.
fn check_println(file: &FileModel, findings: &mut Vec<Finding>) {
    if file.kind != CrateKind::Library {
        return;
    }
    let code = &file.code;
    for i in 0..code.len().saturating_sub(1) {
        if !is_production(file, i) {
            continue;
        }
        if matches!(
            code[i].text.as_str(),
            "println" | "print" | "eprintln" | "eprint" | "dbg"
        ) && code[i + 1].text == "!"
            && (i == 0 || code[i - 1].text != ".")
        {
            emit(
                file,
                findings,
                "no-println",
                code[i].line,
                format!(
                    "`{}!` in a library crate: return data and let the CLI render it",
                    code[i].text
                ),
            );
        }
    }
}

/// `forbid-unsafe`: every non-compat crate root must carry
/// `#![forbid(unsafe_code)]`.
fn check_forbid_unsafe(file: &FileModel, findings: &mut Vec<Finding>) {
    if file.is_crate_root && !file.has_forbid_unsafe {
        emit(
            file,
            findings,
            "forbid-unsafe",
            1,
            "crate root missing `#![forbid(unsafe_code)]` (workspace-uniform policy)".to_string(),
        );
    }
}

/// `pragma`: a suppression without a justification is itself a violation —
/// the pragma syntax *is* the audit trail.
fn check_pragmas(file: &FileModel, findings: &mut Vec<Finding>) {
    for pragmas in file.pragmas.values() {
        for pragma in pragmas {
            if pragma.justification.is_empty() {
                findings.push(Finding {
                    rule: "pragma",
                    path: file.path.display().to_string(),
                    line: pragma.comment_line,
                    message: format!(
                        "pragma `allow({})` has no justification: write \
                         `// tkc-lint: allow(rule) — <reason>`",
                        pragma.rules.join(", ")
                    ),
                    suppressed: None,
                });
            }
            for rule in &pragma.rules {
                if !RULES.contains(&rule.as_str()) {
                    findings.push(Finding {
                        rule: "pragma",
                        path: file.path.display().to_string(),
                        line: pragma.comment_line,
                        message: format!("pragma names unknown rule `{rule}`"),
                        suppressed: None,
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

/// One acquisition of a named lock observed while other guards were held.
#[derive(Debug, Clone)]
struct LockEdge {
    from: String,
    to: String,
    path: String,
    line: u32,
    function: String,
}

/// The global nested-acquisition graph: nodes are named lock sites
/// (`file-stem.field`), edges mean "acquired `to` while holding `from`"
/// somewhere in one function.  A cycle is a potential ABBA deadlock.
#[derive(Default)]
struct LockGraph {
    edges: Vec<LockEdge>,
}

impl LockGraph {
    /// Scans every function of `file` for nested lock acquisitions.
    ///
    /// Heuristics (documented in the README): an acquisition is
    /// `<recv>.lock()` or `sync::lock(&<recv>)` (any path ending in
    /// `lock`); it is *held* beyond its statement only when bound by
    /// `let [mut] name = <acquisition>[.unwrap()|.expect(..)|.unwrap_or_else(..)];`
    /// and released at the end of its enclosing block or at `drop(name)`.
    /// Chained calls past the recovery adapters (`.lock().stats()`) are
    /// statement-temporaries and hold only within the statement.
    fn collect(&mut self, file: &FileModel) {
        let stem = file
            .path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        for span in &file.fns {
            if file.is_test_file || file.in_test[span.body_start] {
                continue;
            }
            self.collect_fn(
                file,
                &stem,
                span.name.clone(),
                span.body_start,
                span.body_end,
            );
        }
    }

    fn collect_fn(
        &mut self,
        file: &FileModel,
        stem: &str,
        function: String,
        start: usize,
        end: usize,
    ) {
        let code = &file.code;
        // Held guards: (variable name, lock node, brace depth at binding).
        let mut held: Vec<(String, String, i32)> = Vec::new();
        let mut depth = 0i32;
        let mut i = start;
        while i <= end {
            match code[i].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    held.retain(|(_, _, d)| *d <= depth);
                }
                "drop" if i + 3 <= end && code[i + 1].text == "(" && code[i + 3].text == ")" => {
                    let var = code[i + 2].text.clone();
                    held.retain(|(name, _, _)| *name != var);
                }
                _ => {}
            }
            if let Some(acq) = acquisition_at(code, i, end) {
                let node = format!("{stem}.{}", acq.lock_name);
                for (_, from, _) in &held {
                    self.edges.push(LockEdge {
                        from: from.clone(),
                        to: node.clone(),
                        path: file.path.display().to_string(),
                        line: code[i].line,
                        function: function.clone(),
                    });
                }
                if let Some(var) = acq.bound_to {
                    held.push((var, node, depth));
                }
                i = acq.next;
                continue;
            }
            i += 1;
        }
    }

    /// Detects cycles (including self-loops) and reports every edge that
    /// participates in one.
    fn report(self, files: &[FileModel], findings: &mut Vec<Finding>) {
        let mut adjacency: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for edge in &self.edges {
            adjacency
                .entry(edge.from.as_str())
                .or_default()
                .insert(edge.to.as_str());
        }
        // An edge is cyclic if its head can reach its tail.
        let reaches = |from: &str, to: &str| -> bool {
            let mut stack = vec![from];
            let mut seen = BTreeSet::new();
            while let Some(node) = stack.pop() {
                if node == to {
                    return true;
                }
                if seen.insert(node) {
                    if let Some(next) = adjacency.get(node) {
                        stack.extend(next.iter().copied());
                    }
                }
            }
            false
        };
        for edge in &self.edges {
            if edge.from == edge.to || reaches(&edge.to, &edge.from) {
                let file = files
                    .iter()
                    .find(|f| f.path.display().to_string() == edge.path);
                let suppressed = file
                    .and_then(|f| f.pragma_for(edge.line, "lock-order"))
                    .map(|p| p.justification.clone());
                let message = if edge.from == edge.to {
                    format!(
                        "fn `{}` re-acquires `{}` while already holding it \
                         (std mutexes are not reentrant: guaranteed deadlock)",
                        edge.function, edge.from
                    )
                } else {
                    format!(
                        "fn `{}` acquires `{}` while holding `{}`, and another path \
                         acquires them in the opposite order (potential ABBA deadlock)",
                        edge.function, edge.to, edge.from
                    )
                };
                findings.push(Finding {
                    rule: "lock-order",
                    path: edge.path.clone(),
                    line: edge.line,
                    message,
                    suppressed,
                });
            }
        }
    }
}

/// One recognised lock acquisition starting at token `i`.
pub(crate) struct Acquisition {
    /// Final identifier of the locked path (`cache` in `self.inner.cache`).
    pub(crate) lock_name: String,
    /// `Some(variable)` when the guard is bound by a `let` and survives the
    /// statement.
    pub(crate) bound_to: Option<String>,
    /// First token index after the acquisition expression.
    pub(crate) next: usize,
}

/// Recognises `<recv>.lock()` and `lock(&<recv>)`-style calls at `i`.
pub(crate) fn acquisition_at(
    code: &[crate::lexer::Token],
    i: usize,
    end: usize,
) -> Option<Acquisition> {
    if code[i].text != "lock" {
        return None;
    }
    // Method form: `<recv>.lock()` — previous token is `.`.
    if i > 0 && code[i - 1].text == "." {
        if code.get(i + 1)?.text != "(" || code.get(i + 2)?.text != ")" {
            return None;
        }
        let lock_name = receiver_name_before(code, i - 1)?;
        let after = skip_recovery_adapters(code, i + 3, end);
        return Some(Acquisition {
            lock_name,
            bound_to: binding_of(code, i, after),
            next: after,
        });
    }
    // Function form: `[sync::|crate::sync::]lock(&<recv>)`.
    if code.get(i + 1)?.text != "(" {
        return None;
    }
    let close = matching_paren(code, i + 1, end)?;
    let mut j = i + 2;
    if code.get(j)?.text == "&" {
        j += 1;
    }
    // The receiver is the path up to the closing paren; take its last ident.
    let lock_name = code[j..close]
        .iter()
        .rev()
        .find(|t| t.kind == crate::lexer::TokenKind::Ident)?
        .text
        .clone();
    let after = skip_recovery_adapters(code, close + 1, end);
    Some(Acquisition {
        lock_name,
        bound_to: binding_of(code, i, after),
        next: after,
    })
}

/// Walks back over `a.b.c` / `a::b` to name the locked field: the last
/// identifier before `.lock`.
fn receiver_name_before(code: &[crate::lexer::Token], dot: usize) -> Option<String> {
    let prev = code.get(dot.checked_sub(1)?)?;
    if prev.kind == crate::lexer::TokenKind::Ident {
        Some(prev.text.clone())
    } else if prev.text == ")" {
        // `self.shared().lock()` — method-call receiver; name the method.
        None
    } else {
        None
    }
}

/// Skips `.unwrap() | .expect(..) | .unwrap_or_else(..)` chains after a lock
/// call: these recover or assert on the guard without consuming it.
fn skip_recovery_adapters(code: &[crate::lexer::Token], mut i: usize, end: usize) -> usize {
    loop {
        if i + 1 > end || code.get(i).map(|t| t.text.as_str()) != Some(".") {
            return i;
        }
        let name = match code.get(i + 1) {
            Some(t) if matches!(t.text.as_str(), "unwrap" | "expect" | "unwrap_or_else") => &t.text,
            _ => return i,
        };
        let _ = name;
        let open = i + 2;
        if code.get(open).map(|t| t.text.as_str()) != Some("(") {
            return i;
        }
        match matching_paren(code, open, end) {
            Some(close) => i = close + 1,
            None => return i,
        }
    }
}

/// `Some(var)` when the tokens around the acquisition form
/// `let [mut] var = <acquisition>;` — i.e. the guard is bound and held.
fn binding_of(code: &[crate::lexer::Token], lock_ident: usize, after: usize) -> Option<String> {
    // The statement must end right after the (adapted) acquisition.
    if code.get(after).map(|t| t.text.as_str()) != Some(";") {
        return None;
    }
    // Walk back from the lock ident to the start of the expression, then
    // expect `let [mut] var =`.
    let mut j = lock_ident;
    while j > 0 {
        let t = &code[j - 1];
        let expr_ident =
            t.kind == crate::lexer::TokenKind::Ident && !matches!(t.text.as_str(), "let" | "mut");
        if expr_ident || matches!(t.text.as_str(), "." | ":" | "&" | "*" | "(" | ")") {
            j -= 1;
        } else {
            break;
        }
    }
    if j >= 3
        && code[j - 1].text == "="
        && code[j - 2].kind == crate::lexer::TokenKind::Ident
        && (code[j - 3].text == "let"
            || (code[j - 3].text == "mut" && code.get(j.checked_sub(4)?)?.text == "let"))
    {
        Some(code[j - 2].text.clone())
    } else {
        None
    }
}

/// Index of the `)` matching the `(` at `open`, bounded by `end`.
pub(crate) fn matching_paren(
    code: &[crate::lexer::Token],
    open: usize,
    end: usize,
) -> Option<usize> {
    let mut depth = 0usize;
    for (j, token) in code.iter().enumerate().skip(open).take(end + 2 - open) {
        if token.text == "(" {
            depth += 1;
        } else if token.text == ")" {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}
