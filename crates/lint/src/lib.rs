//! `tkc-lint`: a std-only concurrency/error-invariant linter for this
//! workspace.
//!
//! The serving stack rests on hand-rolled concurrency — the
//! [`ExecPool`](../tkcore/exec/index.html) work-stealing pool, per-shard
//! service lanes, LRU caches behind mutexes — whose safety claims (panic
//! isolation, poison recovery, deadlock-free nested fan-out) are invariants
//! of *convention*, not of the type system.  This crate machine-checks them
//! on every PR:
//!
//! * a small Rust [`lexer`] that correctly handles raw strings, byte
//!   strings, nested block comments, char literals vs. lifetimes and doc
//!   comments;
//! * an item [`scan`]ner that tracks `fn` boundaries, `#[cfg(test)]` /
//!   `mod tests` regions and per-crate scope;
//! * an analysis stage — a workspace [`symtab`] (every `fn` with crate,
//!   module path and impl self type) and a conservative [`callgraph`]
//!   resolved by suffix match — feeding the [`interproc`] rules
//!   (`lock-order-global`, `no-blocking-in-worker`, `hot-path-alloc`);
//! * a [`rules`] engine with inline suppression pragmas
//!   (`// tkc-lint: allow(<rule>) — <justification>`) and machine-readable
//!   JSON output ([`report`]).
//!
//! Run it locally with `cargo run -p tkc-lint -- --deny`; see
//! `crates/lint/README.md` for each rule's rationale and the pragma syntax.
//!
//! No dependencies beyond `std` — the workspace builds offline.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod interproc;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod symtab;
pub mod workspace;

pub use callgraph::{CallGraph, GraphStats, Resolution};
pub use report::{graph_text, parse_baseline, to_json, to_text, Summary};
pub use rules::{check, Finding, RULES};
pub use scan::{CrateKind, FileModel};
pub use symtab::{FnInfo, SymbolTable};
pub use workspace::{classify_and_scan, scan_workspace};

/// Builds the analysis-stage artifacts (symbol table + call graph) for
/// `files`: what `--graph` dumps and the JSON report embeds.
pub fn analyze(files: &[FileModel]) -> (SymbolTable, CallGraph) {
    let symtab = SymbolTable::build(files);
    let graph = CallGraph::build(files, &symtab);
    (symtab, graph)
}

/// Lints one source string as if it were at `rel_path` in the workspace
/// (classification follows the path).  Test-suite entry point.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let model = classify_and_scan(std::path::PathBuf::from(rel_path), src);
    check(std::slice::from_ref(&model))
}
