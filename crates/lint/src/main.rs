//! CLI for `tkc-lint`: scans the workspace, prints findings, gates CI.
//!
//! ```text
//! cargo run -p tkc-lint --               # report findings, exit 0
//! cargo run -p tkc-lint -- --deny       # exit 1 on any active finding
//! cargo run -p tkc-lint -- --format json
//! cargo run -p tkc-lint -- --rule lock-order --rule no-println
//! cargo run -p tkc-lint -- --graph      # call-graph resolution dump
//! cargo run -p tkc-lint -- --deny --baseline report.json   # new findings only
//! cargo run -p tkc-lint -- --deny --only-path crates/lint  # self-lint
//! cargo run -p tkc-lint -- --list-rules
//! ```

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut json = false;
    let mut show_suppressed = false;
    let mut graph_dump = false;
    let mut baseline: Option<PathBuf> = None;
    let mut only_paths: Vec<String> = Vec::new();
    let mut only_rules: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--deny" => deny = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("--format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--show-suppressed" => show_suppressed = true,
            "--graph" => graph_dump = true,
            "--baseline" => {
                let Some(file) = args.next() else {
                    eprintln!("--baseline needs a JSON report file");
                    return ExitCode::from(2);
                };
                baseline = Some(PathBuf::from(file));
            }
            "--only-path" => {
                let Some(prefix) = args.next() else {
                    eprintln!("--only-path needs a path prefix");
                    return ExitCode::from(2);
                };
                only_paths.push(prefix);
            }
            "--rule" => {
                let Some(rule) = args.next() else {
                    eprintln!("--rule needs a rule name");
                    return ExitCode::from(2);
                };
                if !tkc_lint::RULES.contains(&rule.as_str()) {
                    eprintln!(
                        "unknown rule `{rule}` (known: {})",
                        tkc_lint::RULES.join(", ")
                    );
                    return ExitCode::from(2);
                }
                only_rules.push(rule);
            }
            "--list-rules" => {
                for rule in tkc_lint::RULES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "tkc-lint [--root DIR] [--deny] [--format text|json] \
                     [--rule NAME]... [--only-path PREFIX]... [--baseline FILE] \
                     [--show-suppressed] [--graph] [--list-rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    // Anchor at the workspace root so `cargo run -p tkc-lint` works from
    // anywhere inside the repo: walk up until a Cargo.toml with [workspace].
    if root == Path::new(".") {
        root = find_workspace_root().unwrap_or(root);
    }
    let files = match tkc_lint::scan_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("tkc-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let (symtab, graph) = tkc_lint::analyze(&files);
    let stats = graph.stats(&symtab);
    if graph_dump {
        print!("{}", tkc_lint::graph_text(&stats));
        return ExitCode::SUCCESS;
    }
    let mut findings = tkc_lint::check(&files);
    if !only_rules.is_empty() {
        findings.retain(|f| only_rules.iter().any(|r| r == f.rule));
    }
    // Self-lint / scoped runs: the whole workspace is scanned (the
    // interprocedural rules need global context), then the *report* is
    // narrowed to the requested path prefixes.
    if !only_paths.is_empty() {
        findings.retain(|f| only_paths.iter().any(|p| f.path.starts_with(p.as_str())));
    }
    // Baseline: findings recorded in an earlier JSON report do not fail
    // `--deny`; only new ones do.
    let mut baselined = 0usize;
    if let Some(file) = &baseline {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("tkc-lint: cannot read baseline {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let known = tkc_lint::parse_baseline(&text);
        baselined = findings
            .iter()
            .filter(|f| {
                f.suppressed.is_none()
                    && known.contains(&(f.rule.to_string(), f.path.clone(), f.message.clone()))
            })
            .count();
    }
    let summary = tkc_lint::Summary::of(files.len(), &findings);
    if json {
        print!("{}", tkc_lint::to_json(&findings, summary, Some(&stats)));
    } else {
        print!(
            "{}",
            tkc_lint::to_text(&findings, summary, show_suppressed || !deny)
        );
        if baselined > 0 {
            println!("tkc-lint: {baselined} active finding(s) matched the baseline");
        }
    }
    if deny && summary.active > baselined {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
