//! CLI for `tkc-lint`: scans the workspace, prints findings, gates CI.
//!
//! ```text
//! cargo run -p tkc-lint --               # report findings, exit 0
//! cargo run -p tkc-lint -- --deny       # exit 1 on any active finding
//! cargo run -p tkc-lint -- --format json
//! cargo run -p tkc-lint -- --rule lock-order --rule no-println
//! cargo run -p tkc-lint -- --list-rules
//! ```

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut json = false;
    let mut show_suppressed = false;
    let mut only_rules: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--deny" => deny = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("--format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--show-suppressed" => show_suppressed = true,
            "--rule" => {
                let Some(rule) = args.next() else {
                    eprintln!("--rule needs a rule name");
                    return ExitCode::from(2);
                };
                if !tkc_lint::RULES.contains(&rule.as_str()) {
                    eprintln!(
                        "unknown rule `{rule}` (known: {})",
                        tkc_lint::RULES.join(", ")
                    );
                    return ExitCode::from(2);
                }
                only_rules.push(rule);
            }
            "--list-rules" => {
                for rule in tkc_lint::RULES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "tkc-lint [--root DIR] [--deny] [--format text|json] \
                     [--rule NAME]... [--show-suppressed] [--list-rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    // Anchor at the workspace root so `cargo run -p tkc-lint` works from
    // anywhere inside the repo: walk up until a Cargo.toml with [workspace].
    if root == Path::new(".") {
        root = find_workspace_root().unwrap_or(root);
    }
    let files = match tkc_lint::scan_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("tkc-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut findings = tkc_lint::check(&files);
    if !only_rules.is_empty() {
        findings.retain(|f| only_rules.iter().any(|r| r == f.rule));
    }
    let summary = tkc_lint::Summary::of(files.len(), &findings);
    if json {
        print!("{}", tkc_lint::to_json(&findings, summary));
    } else {
        print!(
            "{}",
            tkc_lint::to_text(&findings, summary, show_suppressed || !deny)
        );
    }
    if deny && summary.active > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
