//! Rendering findings: human text and machine-readable JSON.

use crate::rules::Finding;
use std::fmt::Write as _;

/// Counts of one lint run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Files scanned.
    pub files: usize,
    /// Findings not covered by a pragma (these fail `--deny`).
    pub active: usize,
    /// Findings covered by a justified pragma.
    pub suppressed: usize,
}

impl Summary {
    /// Tallies `findings` over a scan of `files` files.
    pub fn of(files: usize, findings: &[Finding]) -> Self {
        let suppressed = findings.iter().filter(|f| f.suppressed.is_some()).count();
        Self {
            files,
            active: findings.len() - suppressed,
            suppressed,
        }
    }
}

/// Renders findings as `path:line: [rule] message` lines plus a summary.
pub fn to_text(findings: &[Finding], summary: Summary, show_suppressed: bool) -> String {
    let mut out = String::new();
    for finding in findings {
        match &finding.suppressed {
            None => {
                let _ = writeln!(
                    out,
                    "{}:{}: [{}] {}",
                    finding.path, finding.line, finding.rule, finding.message
                );
            }
            Some(justification) if show_suppressed => {
                let _ = writeln!(
                    out,
                    "{}:{}: [{}] suppressed ({justification}): {}",
                    finding.path, finding.line, finding.rule, finding.message
                );
            }
            Some(_) => {}
        }
    }
    let _ = writeln!(
        out,
        "tkc-lint: {} file(s), {} active finding(s), {} suppressed",
        summary.files, summary.active, summary.suppressed
    );
    out
}

/// Renders findings as one JSON document (std-only writer).
pub fn to_json(findings: &[Finding], summary: Summary) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, finding) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \
             \"suppressed\": {}, \"justification\": {}}}",
            json_str(finding.rule),
            json_str(&finding.path),
            finding.line,
            json_str(&finding.message),
            finding.suppressed.is_some(),
            match &finding.suppressed {
                Some(j) => json_str(j),
                None => "null".to_string(),
            },
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"summary\": {{\"files\": {}, \"active\": {}, \"suppressed\": {}}}\n}}\n",
        summary.files, summary.active, summary.suppressed
    );
    out
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
