//! Rendering findings: human text and machine-readable JSON — plus the
//! `--graph` dump of call-graph resolution statistics and the parser for
//! `--baseline` files (which are simply earlier JSON reports).

use crate::callgraph::GraphStats;
use crate::rules::Finding;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Counts of one lint run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Files scanned.
    pub files: usize,
    /// Findings not covered by a pragma (these fail `--deny`).
    pub active: usize,
    /// Findings covered by a justified pragma.
    pub suppressed: usize,
}

impl Summary {
    /// Tallies `findings` over a scan of `files` files.
    pub fn of(files: usize, findings: &[Finding]) -> Self {
        let suppressed = findings.iter().filter(|f| f.suppressed.is_some()).count();
        Self {
            files,
            active: findings.len() - suppressed,
            suppressed,
        }
    }
}

/// Renders findings as `path:line: [rule] message` lines plus a summary.
pub fn to_text(findings: &[Finding], summary: Summary, show_suppressed: bool) -> String {
    let mut out = String::new();
    for finding in findings {
        match &finding.suppressed {
            None => {
                let _ = writeln!(
                    out,
                    "{}:{}: [{}] {}",
                    finding.path, finding.line, finding.rule, finding.message
                );
            }
            Some(justification) if show_suppressed => {
                let _ = writeln!(
                    out,
                    "{}:{}: [{}] suppressed ({justification}): {}",
                    finding.path, finding.line, finding.rule, finding.message
                );
            }
            Some(_) => {}
        }
    }
    let _ = writeln!(
        out,
        "tkc-lint: {} file(s), {} active finding(s), {} suppressed",
        summary.files, summary.active, summary.suppressed
    );
    out
}

/// Renders findings as one JSON document (std-only writer).  When `graph`
/// is present the document carries a `"graph"` object with the call-graph
/// resolution statistics (version 2 of the format; version 1 lacked it).
pub fn to_json(findings: &[Finding], summary: Summary, graph: Option<&GraphStats>) -> String {
    let mut out = String::from("{\n  \"version\": 2,\n  \"findings\": [");
    for (i, finding) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \
             \"suppressed\": {}, \"justification\": {}}}",
            json_str(finding.rule),
            json_str(&finding.path),
            finding.line,
            json_str(&finding.message),
            finding.suppressed.is_some(),
            match &finding.suppressed {
                Some(j) => json_str(j),
                None => "null".to_string(),
            },
        );
    }
    out.push_str("\n  ],\n");
    if let Some(stats) = graph {
        let _ = writeln!(
            out,
            "  \"graph\": {{\"functions\": {}, \"call_sites\": {}, \"unique\": {}, \
             \"ambiguous\": {}, \"external\": {}, \"unresolved\": {}, \
             \"internal\": {}, \"resolution_rate\": {:.4}}},",
            stats.functions,
            stats.call_sites,
            stats.unique,
            stats.ambiguous,
            stats.external,
            stats.unresolved,
            stats.internal(),
            stats.resolution_rate(),
        );
    }
    let _ = write!(
        out,
        "  \"summary\": {{\"files\": {}, \"active\": {}, \"suppressed\": {}}}\n}}\n",
        summary.files, summary.active, summary.suppressed
    );
    out
}

/// Renders the `--graph` debug dump: symbol/call-graph sizes and the
/// resolution breakdown the acceptance gate reads.
pub fn graph_text(stats: &GraphStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "call graph: {} function(s)", stats.functions);
    let _ = writeln!(
        out,
        "  call sites: {} ({} unique, {} ambiguous, {} external, {} unresolved)",
        stats.call_sites, stats.unique, stats.ambiguous, stats.external, stats.unresolved
    );
    let _ = writeln!(
        out,
        "  workspace-internal: {} resolved {}/{} ({:.1}%)",
        stats.internal(),
        stats.unique + stats.ambiguous,
        stats.internal(),
        stats.resolution_rate() * 100.0
    );
    out
}

/// Parses a `--baseline` file (an earlier JSON report) into the set of
/// `(rule, path, message)` triples it recorded.  A minimal std-only string
/// scanner: it walks `"key": "value"` pairs in order (`rule`, `path`,
/// `message` per finding object) and is the exact inverse of `json_str`
/// for the strings this tool itself emits.
pub fn parse_baseline(json: &str) -> BTreeSet<(String, String, String)> {
    let mut out = BTreeSet::new();
    let bytes: Vec<char> = json.chars().collect();
    let mut i = 0usize;
    let mut rule: Option<String> = None;
    let mut path: Option<String> = None;
    while i < bytes.len() {
        if bytes[i] != '"' {
            i += 1;
            continue;
        }
        let (key, next) = parse_json_string(&bytes, i);
        i = next;
        // A key is a string followed by `:`.
        let mut j = i;
        while j < bytes.len() && bytes[j].is_whitespace() {
            j += 1;
        }
        if bytes.get(j) != Some(&':') {
            continue; // a value we already consumed, or an array element
        }
        j += 1;
        while j < bytes.len() && bytes[j].is_whitespace() {
            j += 1;
        }
        if bytes.get(j) != Some(&'"') {
            i = j;
            continue; // non-string value (number, bool, null, object)
        }
        let (value, next) = parse_json_string(&bytes, j);
        i = next;
        match key.as_str() {
            "rule" => {
                rule = Some(value);
                path = None;
            }
            "path" => path = Some(value),
            "message" => {
                if let (Some(r), Some(p)) = (rule.take(), path.take()) {
                    out.insert((r, p, value));
                }
            }
            _ => {}
        }
    }
    out
}

/// Parses the JSON string starting at the `"` at `from`; returns the
/// unescaped contents and the index just past the closing quote.
fn parse_json_string(chars: &[char], from: usize) -> (String, usize) {
    let mut out = String::new();
    let mut i = from + 1;
    while i < chars.len() {
        match chars[i] {
            '"' => return (out, i + 1),
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('u') => {
                        let hex: String = chars.iter().skip(i + 1).take(4).collect();
                        if let Ok(code) = u32::from_str_radix(&hex, 16) {
                            if let Some(c) = char::from_u32(code) {
                                out.push(c);
                            }
                        }
                        i += 4;
                    }
                    Some(&c) => out.push(c),
                    None => break,
                }
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    (out, i)
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
