//! Interprocedural rules over the symbol table and call graph.
//!
//! Three rules run here (rationale in `crates/lint/README.md`):
//!
//! * `lock-order-global` — the intraprocedural nested-lock graph of
//!   [`crate::rules`] is extended with *held-lock propagation across
//!   calls*: a fn holding lock A that calls a fn which (transitively)
//!   acquires lock B contributes the edge A→B.  The combined workspace
//!   graph must stay acyclic; only cycles that need at least one
//!   cross-function edge are reported here (purely local cycles stay with
//!   `lock-order`).
//! * `no-blocking-in-worker` — no function reachable from a closure handed
//!   to `ExecPool::spawn`/`spawn_on`/`run_batch` may block (`Ticket::wait`,
//!   `Condvar::wait`, `JoinHandle::join`, `sync::wait`): a worker that
//!   blocks on work only another worker can finish deadlocks the pool.
//!   Reachability runs over *all* resolved edges (sound over-approximation).
//! * `hot-path-alloc` — functions annotated `// tkc-lint: hot` and
//!   everything reachable from them within their crate must not allocate
//!   per call (`clone`/`to_vec`/`collect`/`format!`/`Box::new`/`vec!`/
//!   `Vec::new`-in-loop).  Reachability follows *uniquely* resolved edges
//!   only: an ambiguous method name (`.get(`) must not drag unrelated
//!   impls into the hot set (under-approximation, disclosed in `--graph`).

use crate::callgraph::CallGraph;
use crate::rules::{acquisition_at, Finding};
use crate::scan::{FileModel, FnSpan};
use crate::symtab::{FnInfo, SymbolTable};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Runs the three interprocedural rules, appending to `findings`.
pub(crate) fn check_interprocedural(
    files: &[FileModel],
    symtab: &SymbolTable,
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
) {
    let facts: Vec<FnFacts> = (0..symtab.fns.len())
        .map(|id| collect_fn_facts(files, symtab, graph, id))
        .collect();
    check_lock_order_global(files, symtab, graph, &facts, findings);
    check_no_blocking_in_worker(files, symtab, graph, findings);
    check_hot_path_alloc(files, symtab, graph, findings);
}

/// Emits with pragma lookup in the right file.
fn emit(
    files: &[FileModel],
    file: usize,
    findings: &mut Vec<Finding>,
    rule: &'static str,
    line: u32,
    message: String,
) {
    let file = &files[file];
    let suppressed = file.pragma_for(line, rule).map(|p| p.justification.clone());
    findings.push(Finding {
        rule,
        path: file.path.display().to_string(),
        line,
        message,
        suppressed,
    });
}

// ---------------------------------------------------------------------------
// lock-order-global
// ---------------------------------------------------------------------------

/// Lock behaviour of one function: what it acquires directly, and which
/// guards are held at each of its call sites.
#[derive(Debug, Default)]
struct FnFacts {
    /// Named lock nodes this fn acquires (bound *or* statement-temporary:
    /// a temporary still blocks while it is taken).
    direct: Vec<String>,
    /// Intra-fn nested edges `held → acquired` (already policed by
    /// `lock-order`; needed here so composed cycles close).
    intra_edges: Vec<(String, String)>,
    /// Per call site of this fn: `(site index, nodes held at the call)`.
    calls_with_held: Vec<(usize, Vec<String>)>,
}

/// Replays the `lock-order` held-guard walk over one fn, additionally
/// snapshotting the held set at every resolved call site.
fn collect_fn_facts(
    files: &[FileModel],
    symtab: &SymbolTable,
    graph: &CallGraph,
    id: usize,
) -> FnFacts {
    let info = &symtab.fns[id];
    let file = &files[info.file];
    let span = &file.fns[info.span];
    let stem = file
        .path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let site_at: BTreeMap<usize, usize> = graph.sites_by_fn[id]
        .iter()
        .map(|&s| (graph.sites[s].token, s))
        .collect();
    let mut facts = FnFacts::default();
    let code = &file.code;
    let (start, end) = (span.body_start, span.body_end);
    let mut held: Vec<(String, String, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut i = start;
    while i <= end {
        match code[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                held.retain(|(_, _, d)| *d <= depth);
            }
            "drop" if i + 3 <= end && code[i + 1].text == "(" && code[i + 3].text == ")" => {
                let var = code[i + 2].text.clone();
                held.retain(|(name, _, _)| *name != var);
            }
            _ => {}
        }
        // Snapshot the held set *before* the acquisition at this token (a
        // `.lock()` call site acquires after the call is issued).
        if let Some(&site) = site_at.get(&i) {
            if !graph.sites[site].targets.is_empty() && !held.is_empty() {
                facts
                    .calls_with_held
                    .push((site, held.iter().map(|(_, node, _)| node.clone()).collect()));
            }
        }
        if let Some(acq) = acquisition_at(code, i, end) {
            let node = format!("{stem}.{}", acq.lock_name);
            for (_, from, _) in &held {
                facts.intra_edges.push((from.clone(), node.clone()));
            }
            facts.direct.push(node.clone());
            if let Some(var) = acq.bound_to {
                held.push((var, node, depth));
            }
            i = acq.next;
            continue;
        }
        i += 1;
    }
    facts
}

fn check_lock_order_global(
    files: &[FileModel],
    symtab: &SymbolTable,
    graph: &CallGraph,
    facts: &[FnFacts],
    findings: &mut Vec<Finding>,
) {
    // Transitive lock sets: locks a call into `id` may take, to fixpoint.
    let mut lock_sets: Vec<BTreeSet<String>> = facts
        .iter()
        .map(|f| f.direct.iter().cloned().collect())
        .collect();
    loop {
        let mut changed = false;
        for id in 0..lock_sets.len() {
            for &callee in &graph.callees[id] {
                if callee == id {
                    continue;
                }
                let add: Vec<String> = lock_sets[callee]
                    .iter()
                    .filter(|l| !lock_sets[id].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    lock_sets[id].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Cross-function edges: held at a call → anything the callee may take.
    struct CrossEdge {
        from: String,
        to: String,
        caller: usize,
        callee: usize,
        file: usize,
        line: u32,
    }
    let mut cross: Vec<CrossEdge> = Vec::new();
    let mut seen: BTreeSet<(String, String, usize, u32)> = BTreeSet::new();
    for (id, fact) in facts.iter().enumerate() {
        for (site_idx, held) in &fact.calls_with_held {
            let site = &graph.sites[*site_idx];
            for &callee in &site.targets {
                for from in held {
                    for to in lock_sets[callee].iter() {
                        if seen.insert((from.clone(), to.clone(), site.file, site.line)) {
                            cross.push(CrossEdge {
                                from: from.clone(),
                                to: to.clone(),
                                caller: id,
                                callee,
                                file: site.file,
                                line: site.line,
                            });
                        }
                    }
                }
            }
        }
    }
    // Combined adjacency: intra edges + cross edges.
    let mut adjacency: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for fact in facts {
        for (from, to) in &fact.intra_edges {
            adjacency.entry(from).or_default().insert(to);
        }
    }
    for edge in &cross {
        adjacency
            .entry(edge.from.as_str())
            .or_default()
            .insert(edge.to.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut stack = vec![from];
        let mut visited = BTreeSet::new();
        while let Some(node) = stack.pop() {
            if node == to {
                return true;
            }
            if visited.insert(node) {
                if let Some(next) = adjacency.get(node) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    // Only cross edges are reported here: a cycle with no cross edge is a
    // purely intraprocedural problem and already belongs to `lock-order`.
    for edge in &cross {
        if edge.from == edge.to || reaches(&edge.to, &edge.from) {
            let caller = &symtab.fns[edge.caller];
            let callee = &symtab.fns[edge.callee];
            let message = if edge.from == edge.to {
                format!(
                    "fn `{}` calls `{}` while holding `{}`, and the callee \
                     (transitively) re-acquires it — std mutexes are not \
                     reentrant: guaranteed deadlock",
                    caller.name,
                    callee.qualified(),
                    edge.from
                )
            } else {
                format!(
                    "fn `{}` calls `{}` while holding `{}`; the callee \
                     (transitively) acquires `{}`, closing a cross-function \
                     lock-order cycle (potential ABBA deadlock)",
                    caller.name,
                    callee.qualified(),
                    edge.from,
                    edge.to
                )
            };
            emit(
                files,
                edge.file,
                findings,
                "lock-order-global",
                edge.line,
                message,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// no-blocking-in-worker
// ---------------------------------------------------------------------------

/// Is `info` an entry point whose closure argument runs on pool workers?
fn is_spawn_entry(info: &FnInfo) -> bool {
    (info.self_type.as_deref() == Some("ExecPool")
        && matches!(info.name.as_str(), "spawn" | "spawn_on" | "run_batch"))
        || info.name == "run_batch_inner"
}

/// One blocking call recognised inside a token range.
struct BlockingCall {
    line: u32,
    what: String,
}

/// Scans `[start, end]` of `code` for blocking primitives: `.wait(`,
/// `.join(`, and path calls ending in `wait(` (`sync::wait`).
fn blocking_calls(code: &[crate::lexer::Token], start: usize, end: usize) -> Vec<BlockingCall> {
    let mut out = Vec::new();
    for i in start..=end.min(code.len().saturating_sub(1)) {
        if code.get(i + 1).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        let name = code[i].text.as_str();
        let prev = i
            .checked_sub(1)
            .and_then(|p| code.get(p))
            .map(|t| t.text.as_str());
        if prev == Some("fn") {
            continue;
        }
        let is_method = prev == Some(".");
        if is_method && matches!(name, "wait" | "join") {
            out.push(BlockingCall {
                line: code[i].line,
                what: format!(".{name}(..)"),
            });
        } else if !is_method && name == "wait" {
            out.push(BlockingCall {
                line: code[i].line,
                what: "sync::wait(..)".to_string(),
            });
        }
    }
    out
}

fn check_no_blocking_in_worker(
    files: &[FileModel],
    symtab: &SymbolTable,
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
) {
    // Roots: every call target inside a closure handed to a spawn entry —
    // plus the closure bodies themselves, scanned directly.
    let mut roots: Vec<(usize, String)> = Vec::new(); // (fn id, origin label)
    for site in &graph.sites {
        if !site.targets.iter().any(|&t| is_spawn_entry(&symtab.fns[t])) {
            continue;
        }
        let file = &files[site.file];
        let code = &file.code;
        let caller_span = &file.fns[symtab.fns[site.caller].span];
        let Some(close) = crate::rules::matching_paren(code, site.token + 1, caller_span.body_end)
        else {
            continue;
        };
        let origin = format!(
            "closure handed to `{}` at {}:{}",
            site.name,
            file.path.display(),
            site.line
        );
        for range in closure_ranges(code, site.token + 1, close) {
            // Direct blocking calls in the closure body itself.
            for call in blocking_calls(code, range.0, range.1) {
                emit(
                    files,
                    site.file,
                    findings,
                    "no-blocking-in-worker",
                    call.line,
                    format!(
                        "worker task blocks on `{}` ({origin}): an ExecPool \
                         task must never wait — nested fan-out goes through \
                         the pool's claim-alongside-helpers batch path",
                        call.what
                    ),
                );
            }
            // Calls made by the closure are worker-reachable roots.
            for other in &graph.sites {
                if other.file == site.file && other.token >= range.0 && other.token <= range.1 {
                    for &target in &other.targets {
                        roots.push((target, origin.clone()));
                    }
                }
            }
        }
    }
    // BFS over all resolved edges; remember one origin chain per fn.
    let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut origin_of: BTreeMap<usize, String> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (id, origin) in roots {
        if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(id) {
            e.insert(None);
            origin_of.insert(id, origin);
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for &callee in &graph.callees[id] {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(callee) {
                e.insert(Some(id));
                if let Some(origin) = origin_of.get(&id).cloned() {
                    origin_of.insert(callee, origin);
                }
                queue.push_back(callee);
            }
        }
    }
    let chain_of = |mut id: usize| -> String {
        let mut names = vec![symtab.fns[id].name.clone()];
        while let Some(Some(p)) = parent.get(&id) {
            names.push(symtab.fns[*p].name.clone());
            id = *p;
        }
        names.reverse();
        names.join(" → ")
    };
    for &id in parent.keys() {
        let info = &symtab.fns[id];
        let file = &files[info.file];
        // The poison-recovering primitives in tkcore/src/sync.rs *are* the
        // sanctioned wait implementation; their callers are what we police.
        if file.path.ends_with("tkcore/src/sync.rs") {
            continue;
        }
        let span = &file.fns[info.span];
        for call in blocking_calls(&file.code, span.body_start, span.body_end) {
            let origin = origin_of.get(&id).cloned().unwrap_or_default();
            emit(
                files,
                info.file,
                findings,
                "no-blocking-in-worker",
                call.line,
                format!(
                    "fn `{}` blocks on `{}` but runs on an ExecPool worker \
                     ({origin}; path {}) — a blocked worker can deadlock the \
                     pool; nested fan-out goes through the \
                     claim-alongside-helpers batch path",
                    info.name,
                    call.what,
                    chain_of(id)
                ),
            );
        }
    }
}

/// Token ranges of the closure bodies between `open` and `close` (the
/// argument span of a spawn-entry call).
fn closure_ranges(code: &[crate::lexer::Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut u = open + 1;
    while u < close {
        let prev = code[u - 1].text.as_str();
        let starts_closure =
            code[u].text == "|" && matches!(prev, "(" | "," | "move" | "=" | "{" | "&");
        if !starts_closure {
            u += 1;
            continue;
        }
        // Parameter list: `||` or `|...|`.
        let body = if code.get(u + 1).map(|t| t.text.as_str()) == Some("|") {
            u + 2
        } else {
            let mut v = u + 1;
            while v < close && code[v].text != "|" {
                v += 1;
            }
            v + 1
        };
        if body >= close {
            break;
        }
        let end = if code[body].text == "{" {
            matching_brace_bounded(code, body, close).unwrap_or(close - 1)
        } else {
            // Expression body: to the `,` or `)` closing the argument.
            let mut depth = 0i32;
            let mut v = body;
            let mut end = close - 1;
            while v < close {
                match code[v].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => {
                        end = v - 1;
                        break;
                    }
                    _ => {}
                }
                v += 1;
            }
            end
        };
        ranges.push((body, end));
        u = body;
    }
    ranges
}

/// `}` matching the `{` at `from`, bounded by `close`.
fn matching_brace_bounded(
    code: &[crate::lexer::Token],
    from: usize,
    close: usize,
) -> Option<usize> {
    let mut depth = 0i32;
    for (j, token) in code.iter().enumerate().skip(from).take(close + 1 - from) {
        if token.text == "{" {
            depth += 1;
        } else if token.text == "}" {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------------

/// One banned allocation found in a hot function body.
struct HotAlloc {
    line: u32,
    what: String,
}

/// Scans one fn body for per-call allocations: `.clone(`, `.to_vec(`,
/// `.collect(`, `format!`, `vec!`, `Box::new(`, and `Vec::new(` /
/// `Vec::with_capacity(` inside a loop.
fn hot_allocs(code: &[crate::lexer::Token], span: &FnSpan) -> Vec<HotAlloc> {
    let mut out = Vec::new();
    // Loop-body tracking: which brace depths opened a `for`/`while`/`loop`.
    let mut loop_braces: Vec<bool> = Vec::new();
    let mut pending_loop = false;
    for i in span.body_start..=span.body_end {
        let text = code[i].text.as_str();
        match text {
            "for" | "while" | "loop" => pending_loop = true,
            "{" => {
                loop_braces.push(pending_loop);
                pending_loop = false;
            }
            "}" => {
                loop_braces.pop();
            }
            _ => {}
        }
        let next = code.get(i + 1).map(|t| t.text.as_str());
        let prev = i
            .checked_sub(1)
            .and_then(|p| code.get(p))
            .map(|t| t.text.as_str());
        if next == Some("(") && prev == Some(".") && matches!(text, "clone" | "to_vec" | "collect")
        {
            out.push(HotAlloc {
                line: code[i].line,
                what: format!(".{text}(..)"),
            });
        }
        if next == Some("!") && matches!(text, "format" | "vec") && prev != Some(".") {
            out.push(HotAlloc {
                line: code[i].line,
                what: format!("{text}!"),
            });
        }
        if matches!(text, "Box" | "Vec")
            && next == Some(":")
            && code.get(i + 2).map(|t| t.text.as_str()) == Some(":")
            && code.get(i + 4).map(|t| t.text.as_str()) == Some("(")
        {
            let method = code[i + 3].text.as_str();
            let in_loop = loop_braces.iter().any(|&l| l);
            let banned = (text == "Box" && method == "new")
                || (text == "Vec" && matches!(method, "new" | "with_capacity") && in_loop);
            if banned {
                let suffix = if text == "Vec" { " in a loop" } else { "" };
                out.push(HotAlloc {
                    line: code[i + 3].line,
                    what: format!("{text}::{method}(..){suffix}"),
                });
            }
        }
    }
    out
}

fn check_hot_path_alloc(
    files: &[FileModel],
    symtab: &SymbolTable,
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
) {
    // Seeds: `// tkc-lint: hot`-annotated fns.  Reachability follows
    // uniquely resolved edges and stays inside the seed's crate.
    let mut seed_of: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (id, info) in symtab.fns.iter().enumerate() {
        if info.is_hot && !info.is_test {
            seed_of.insert(id, id);
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        let seed = seed_of[&id];
        let crate_name = symtab.fns[seed].crate_name.clone();
        for &callee in &graph.callees_unique[id] {
            if symtab.fns[callee].crate_name != crate_name || symtab.fns[callee].is_test {
                continue;
            }
            if let std::collections::btree_map::Entry::Vacant(e) = seed_of.entry(callee) {
                e.insert(seed);
                queue.push_back(callee);
            }
        }
    }
    for (&id, &seed) in &seed_of {
        let info = &symtab.fns[id];
        let file = &files[info.file];
        let span = &file.fns[info.span];
        for alloc in hot_allocs(&file.code, span) {
            let via = if id == seed {
                String::new()
            } else {
                format!(
                    " (reachable from hot seed `{}`)",
                    symtab.fns[seed].qualified()
                )
            };
            emit(
                files,
                info.file,
                findings,
                "hot-path-alloc",
                alloc.line,
                format!(
                    "hot path: `{}` allocates per call in fn `{}`{via} — reuse \
                     a caller-provided scratch buffer, or justify with \
                     `// tkc-lint: allow(hot-path-alloc) — <why>`",
                    alloc.what, info.name
                ),
            );
        }
    }
}
