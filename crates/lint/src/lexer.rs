//! A small Rust lexer, sufficient for rule matching.
//!
//! The rules only need a *token* view of a source file — identifiers,
//! punctuation and comments with correct line numbers — but getting that
//! view right requires handling every Rust construct that can make naive
//! string search lie:
//!
//! * **raw strings** (`r"..."`, `r#"..."#` with any number of hashes, and
//!   the `b`/`br` byte forms), inside which `// thread::spawn` is data, not
//!   a violation;
//! * **nested block comments** (`/* /* */ */` is one comment in Rust);
//! * **char literals vs. lifetimes** (`'a'` is a literal, `'a` is a
//!   lifetime, `b'x'` is a byte literal) — mixing these up would make the
//!   lexer swallow code after a generic parameter list;
//! * **raw identifiers** (`r#fn` is an identifier, not a raw string);
//! * **doc comments** (`///`, `//!`, `/** .. */`), which are comments to the
//!   rules but must not hide a `tkc-lint: allow(...)` pragma (pragmas live
//!   in plain `//` comments only).
//!
//! The lexer is deliberately lossless about *placement* (every token knows
//! its 1-based line) and lossy about things the rules never look at
//! (numeric literal suffixes are not validated, multi-character operators
//! come out as single-character [`TokenKind::Punct`] tokens).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#fn`).
    Ident,
    /// A lifetime or loop label: `'a`, `'static`, `'_`.
    Lifetime,
    /// Character literal `'x'` / byte literal `b'x'`, escapes included.
    CharLit,
    /// String literal `"..."` / byte string `b"..."`, escapes included.
    StrLit,
    /// Raw (byte) string literal `r"..."` / `r#"..."#` / `br#"..."#`.
    RawStrLit,
    /// Numeric literal (integers, floats, any radix; suffixes included).
    Number,
    /// A `//` comment (plain or doc); text includes the slashes.
    LineComment,
    /// A `/* ... */` comment (doc or not), nesting handled.
    BlockComment,
    /// Any other single character: braces, `::` comes out as two `:`.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Raw text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into tokens; never fails (unterminated constructs run to end
/// of input, which is the useful behaviour for a linter).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking the line counter.
    fn bump(&mut self, out: &mut String) {
        if let Some(c) = self.chars.get(self.pos) {
            if *c == '\n' {
                self.line += 1;
            }
            out.push(*c);
            self.pos += 1;
        }
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    let mut sink = String::new();
                    self.bump(&mut sink);
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                'r' | 'b' if self.raw_or_byte_prefix() => {}
                '"' => self.string_lit(line),
                '\'' => self.quote(line),
                _ if c == '_' || c.is_alphabetic() => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    let mut text = String::new();
                    self.bump(&mut text);
                    self.push(TokenKind::Punct, text, line);
                }
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump(&mut text);
        }
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump(&mut text);
                self.bump(&mut text);
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump(&mut text);
                self.bump(&mut text);
                if depth == 0 {
                    break;
                }
            } else {
                self.bump(&mut text);
            }
        }
        self.push(TokenKind::BlockComment, text, line);
    }

    /// Handles the `r` / `b` / `br` / `rb` prefixes: raw strings, byte
    /// strings, byte chars and raw identifiers.  Returns whether a token was
    /// consumed; `false` means the caller should lex a plain identifier.
    ///
    /// `rb"..."` is not accepted by rustc (only `br` is a valid prefix), but
    /// the lexer still folds it into one raw-string token: splitting it into
    /// an identifier plus a string would let the string body re-enter the
    /// token stream on almost-Rust input and desync pragma line attribution.
    /// A linter must stay lossless on input it cannot reject.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let line = self.line;
        let c = self.peek(0).unwrap_or(' ');
        // b'x' — byte char literal.
        if c == 'b' && self.peek(1) == Some('\'') {
            let mut text = String::new();
            self.bump(&mut text); // b
            self.char_lit_into(text, line);
            return true;
        }
        // b"..." — byte string.
        if c == 'b' && self.peek(1) == Some('"') {
            let mut text = String::new();
            self.bump(&mut text); // b
            self.string_lit_into(text, line);
            return true;
        }
        // r"..." / r#"..."# / br#"..."# / rb#"..."# / r#ident.
        let (prefix_len, after) = if c == 'r' && self.peek(1) == Some('b') {
            (2, 2)
        } else if c == 'r' {
            (1, 1)
        } else if c == 'b' && self.peek(1) == Some('r') {
            (2, 2)
        } else {
            return false;
        };
        // Count hashes after the prefix.
        let mut hashes = 0usize;
        while self.peek(after + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(after + hashes) {
            Some('"') => {
                let mut text = String::new();
                for _ in 0..prefix_len {
                    self.bump(&mut text);
                }
                self.raw_string_body(text, hashes, line);
                true
            }
            // r#ident — raw identifier (only the single-# form exists).
            Some(id) if prefix_len == 1 && hashes == 1 && (id == '_' || id.is_alphabetic()) => {
                let mut text = String::new();
                self.bump(&mut text); // r
                self.bump(&mut text); // #
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        self.bump(&mut text);
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Ident, text, line);
                true
            }
            _ => false, // a plain identifier starting with r / br
        }
    }

    /// Lexes `#*"..."#*` after `text` already holds the `r`/`br` prefix.
    fn raw_string_body(&mut self, mut text: String, hashes: usize, line: u32) {
        for _ in 0..hashes {
            self.bump(&mut text); // opening #s
        }
        self.bump(&mut text); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let closed = (1..=hashes).all(|i| self.peek(i) == Some('#'));
                self.bump(&mut text);
                if closed {
                    for _ in 0..hashes {
                        self.bump(&mut text);
                    }
                    break;
                }
            } else {
                self.bump(&mut text);
            }
        }
        self.push(TokenKind::RawStrLit, text, line);
    }

    fn string_lit(&mut self, line: u32) {
        self.string_lit_into(String::new(), line);
    }

    fn string_lit_into(&mut self, mut text: String, line: u32) {
        self.bump(&mut text); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump(&mut text);
                self.bump(&mut text);
            } else if c == '"' {
                self.bump(&mut text);
                break;
            } else {
                self.bump(&mut text);
            }
        }
        self.push(TokenKind::StrLit, text, line);
    }

    /// A `'` can open a char literal (`'a'`, `'\n'`) or a lifetime (`'a`,
    /// `'static`, `'_`).  Disambiguation: an escape is always a literal; an
    /// identifier char followed directly by `'` is a literal; otherwise an
    /// identifier-start char begins a lifetime.
    fn quote(&mut self, line: u32) {
        match self.peek(1) {
            Some('\\') => self.char_lit_into(String::new(), line),
            Some(c) if (c == '_' || c.is_alphanumeric()) && self.peek(2) == Some('\'') => {
                self.char_lit_into(String::new(), line)
            }
            Some(c) if c == '_' || c.is_alphabetic() => {
                let mut text = String::new();
                self.bump(&mut text); // '
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        self.bump(&mut text);
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Lifetime, text, line);
            }
            // `'('`-style literal of a non-identifier char.
            _ => self.char_lit_into(String::new(), line),
        }
    }

    fn char_lit_into(&mut self, mut text: String, line: u32) {
        self.bump(&mut text); // opening '
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump(&mut text);
                self.bump(&mut text);
            } else if c == '\'' {
                self.bump(&mut text);
                break;
            } else if c == '\n' {
                break; // unterminated; don't eat the rest of the file
            } else {
                self.bump(&mut text);
            }
        }
        self.push(TokenKind::CharLit, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.bump(&mut text);
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    /// Numbers: digits, radix prefixes, underscores, type suffixes and a
    /// fractional part when the dot is followed by a digit (so `1..=3` lexes
    /// as `1`, `.`, `.`, `=`, `3`).
    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let fraction_dot = c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            if c == '_' || c.is_alphanumeric() || fraction_dot {
                self.bump(&mut text);
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::{lex, TokenKind};

    /// `(kind, text)` pairs with comments and whitespace intact.
    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_with_hashes_are_single_tokens() {
        let tokens = kinds(r####"let s = r#"panic!("no") and "quotes""#;"####);
        assert_eq!(
            tokens[3],
            (
                TokenKind::RawStrLit,
                r####"r#"panic!("no") and "quotes""#"####.to_string()
            )
        );
        assert_eq!(tokens[4].1, ";");
    }

    #[test]
    fn a_raw_string_needs_matching_hash_counts_to_close() {
        let tokens = kinds(r#####"r##"ends with "# but not here"##"#####);
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].0, TokenKind::RawStrLit);
    }

    #[test]
    fn byte_strings_and_byte_chars_lex_as_literals() {
        let tokens = kinds(r###"(br#"x"#, b"y", b'z')"###);
        assert_eq!(tokens[1].0, TokenKind::RawStrLit);
        assert_eq!(tokens[3].0, TokenKind::StrLit);
        assert_eq!(tokens[5], (TokenKind::CharLit, "b'z'".to_string()));
    }

    #[test]
    fn byte_string_prefixes_lex_losslessly() {
        // `b".."` and `br".."` are real Rust; `rb".."` is not accepted by
        // rustc but the lexer must still swallow it as one literal instead
        // of splitting it into `rb` + a string (which would leak decoy
        // contents into rule matching).
        let tokens = kinds(r###"b"one" br"two" br##"with "# inside"## rb"three" done"###);
        let expect = [
            (TokenKind::StrLit, r#"b"one""#),
            (TokenKind::RawStrLit, r#"br"two""#),
            (TokenKind::RawStrLit, r###"br##"with "# inside"##"###),
            (TokenKind::RawStrLit, r#"rb"three""#),
            (TokenKind::Ident, "done"),
        ];
        let got: Vec<(TokenKind, &str)> = tokens.iter().map(|(k, t)| (*k, t.as_str())).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn multiline_byte_strings_attribute_following_tokens_correctly() {
        let src = "b\"first\nsecond\"\nafter br\"x\ny\" tail";
        let tokens = lex(src);
        let placed: Vec<(&str, u32)> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(placed, [("after", 3), ("tail", 4)]);
    }

    #[test]
    fn block_comments_nest() {
        let tokens = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(tokens.len(), 3);
        assert_eq!(tokens[1].0, TokenKind::BlockComment);
        assert_eq!(tokens[2].1, "b");
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let tokens = kinds("<'a> 'a' '\\'' '_ '_' '(' b'x'");
        let expect = [
            (TokenKind::Punct, "<"),
            (TokenKind::Lifetime, "'a"),
            (TokenKind::Punct, ">"),
            (TokenKind::CharLit, "'a'"),
            (TokenKind::CharLit, "'\\''"),
            (TokenKind::Lifetime, "'_"),
            (TokenKind::CharLit, "'_'"),
            (TokenKind::CharLit, "'('"),
            (TokenKind::CharLit, "b'x'"),
        ];
        let got: Vec<(TokenKind, &str)> = tokens.iter().map(|(k, t)| (*k, t.as_str())).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn raw_identifiers_are_idents_not_raw_strings() {
        let tokens = kinds("let r#fn = r#type;");
        assert_eq!(tokens[1], (TokenKind::Ident, "r#fn".to_string()));
        assert_eq!(tokens[3], (TokenKind::Ident, "r#type".to_string()));
    }

    #[test]
    fn idents_starting_with_r_or_b_are_plain_idents() {
        let tokens = kinds("ready break branch r b");
        assert!(tokens.iter().all(|(k, _)| *k == TokenKind::Ident));
        assert_eq!(tokens.len(), 5);
    }

    #[test]
    fn doc_and_plain_line_comments_keep_their_slashes() {
        let tokens = kinds("/// doc\n//! inner\n// plain\ncode");
        assert_eq!(tokens[0], (TokenKind::LineComment, "/// doc".to_string()));
        assert_eq!(tokens[1].1, "//! inner");
        assert_eq!(tokens[2].1, "// plain");
        assert_eq!(tokens[3], (TokenKind::Ident, "code".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n/* two\nlines */\nr#\"raw\nstring\"#\nb";
        let tokens = lex(src);
        let lines: Vec<(String, u32)> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident || t.kind == TokenKind::RawStrLit)
            .map(|t| (t.text.clone(), t.line))
            .collect();
        assert_eq!(lines[0], ("a".to_string(), 1));
        assert_eq!(lines[1], ("r#\"raw\nstring\"#".to_string(), 4));
        assert_eq!(lines[2], ("b".to_string(), 6));
    }

    #[test]
    fn ranges_do_not_glue_into_floats() {
        let tokens = kinds("1..=3 1.5 0xFF_u32");
        let texts: Vec<&str> = tokens.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["1", ".", ".", "=", "3", "1.5", "0xFF_u32"]);
    }

    #[test]
    fn strings_with_escaped_quotes_stay_closed() {
        let tokens = kinds(r#""a \" b" next"#);
        assert_eq!(tokens[0].0, TokenKind::StrLit);
        assert_eq!(tokens[1], (TokenKind::Ident, "next".to_string()));
    }

    #[test]
    fn unterminated_constructs_run_to_end_without_panicking() {
        for src in ["\"open", "r#\"open", "/* open", "'", "b'"] {
            let _ = lex(src);
        }
    }
}
