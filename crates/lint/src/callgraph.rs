//! Conservative workspace call graph over the symbol table.
//!
//! Call sites are recognised syntactically (`name(` for path calls,
//! `.name(` for method calls; macros are excluded by the trailing `!`) and
//! resolved by *suffix match*: candidates are every workspace `fn` with the
//! same bare name, narrowed by callable-ness (method syntax only reaches
//! `self`-taking fns), by an explicit path qualifier (`Type::name`,
//! `module::name`, `Self::name`, `crate::name`), by a `self.` receiver
//! (prefer the enclosing impl's own method), and finally by preferring
//! same-crate candidates over cross-crate ones.  A site that still has
//! several candidates is linked to *all* of them — the graph over- rather
//! than under-approximates, and every such site is counted and reported so
//! the imprecision stays visible (`tkc-lint --graph`).

use crate::scan::FileModel;
use crate::symtab::{FnInfo, SymbolTable};
use std::collections::BTreeSet;

/// Bare calls that always mean the std prelude, even when a workspace fn
/// shares the name (`drop(guard)` is `std::mem::drop`, not a `Drop` impl).
const BUILTIN_FNS: &[&str] = &["drop"];

/// Keywords that can directly precede `(` without being a call.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "ref", "else", "let",
    "mut", "pub", "use", "mod", "impl", "struct", "enum", "union", "trait", "type", "where",
    "unsafe", "async", "await", "dyn", "const", "static", "crate", "super", "self", "Self",
    "break", "continue", "fn", "extern", "yield", "box",
];

/// How a call site was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Exactly one workspace candidate survived.
    Unique,
    /// Several candidates survived; the site links to all of them.
    Ambiguous,
    /// No workspace fn shares the name (or a path qualifier pointed outside
    /// the workspace): std / compat / closure parameter.
    External,
    /// The name matches workspace fns, but none is callable at this site
    /// (e.g. method syntax over free fns only).  Recorded so the gap in the
    /// over-approximation stays visible.
    Unresolved,
}

/// One recognised call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the file in the scanned slice.
    pub file: usize,
    /// Symbol id of the enclosing (innermost) function.
    pub caller: usize,
    /// Token index of the callee name in `files[file].code`.
    pub token: usize,
    /// Source line of the callee name.
    pub line: u32,
    /// Bare callee name.
    pub name: String,
    /// Path segment right before `::name`, when the call is qualified.
    pub qualifier: Option<String>,
    /// Whether the site uses method syntax (`recv.name(..)`).
    pub is_method: bool,
    /// Whether the method receiver is literally `self`.
    pub receiver_is_self: bool,
    /// Symbol ids the site resolved to (empty for external/unresolved).
    pub targets: Vec<usize>,
    /// Resolution class of the site.
    pub resolution: Resolution,
}

/// Aggregate resolution statistics for `--graph` and the JSON report.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats {
    /// Workspace functions in the symbol table.
    pub functions: usize,
    /// Call sites recognised in production code.
    pub call_sites: usize,
    /// Sites resolved to exactly one candidate.
    pub unique: usize,
    /// Sites linked to several candidates.
    pub ambiguous: usize,
    /// Sites pointing outside the workspace.
    pub external: usize,
    /// Workspace-named sites with no callable candidate.
    pub unresolved: usize,
}

impl GraphStats {
    /// Sites whose name matches at least one workspace fn.
    pub fn internal(&self) -> usize {
        self.unique + self.ambiguous + self.unresolved
    }

    /// Fraction of workspace-internal sites with at least one callee edge.
    pub fn resolution_rate(&self) -> f64 {
        if self.internal() == 0 {
            1.0
        } else {
            (self.unique + self.ambiguous) as f64 / self.internal() as f64
        }
    }
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every recognised call site, in (file, token) order.
    pub sites: Vec<CallSite>,
    /// Per symbol id: deduplicated resolved callee ids (all edges,
    /// including ambiguous ones — the sound over-approximation).
    pub callees: Vec<Vec<usize>>,
    /// Per symbol id: callees through *uniquely* resolved sites only (the
    /// precise under-approximation `hot-path-alloc` traverses; see README).
    pub callees_unique: Vec<Vec<usize>>,
    /// Per symbol id: indexes into `sites` originating in that fn.
    pub sites_by_fn: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Extracts and resolves every call site in production functions.
    pub fn build(files: &[FileModel], symtab: &SymbolTable) -> Self {
        let mut graph = Self {
            sites: Vec::new(),
            callees: vec![Vec::new(); symtab.fns.len()],
            callees_unique: vec![Vec::new(); symtab.fns.len()],
            sites_by_fn: vec![Vec::new(); symtab.fns.len()],
        };
        // Innermost enclosing symbol per token, per file.
        for (file_idx, file) in files.iter().enumerate() {
            let mut owner: Vec<Option<usize>> = vec![None; file.code.len()];
            for (id, info) in symtab.fns.iter().enumerate() {
                if info.file != file_idx {
                    continue;
                }
                let span = &file.fns[info.span];
                for slot in &mut owner[span.decl_index..=span.body_end] {
                    *slot = Some(id);
                }
            }
            graph.extract_file(file_idx, file, &owner, symtab);
        }
        let mut callee_sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); symtab.fns.len()];
        let mut unique_sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); symtab.fns.len()];
        for (idx, site) in graph.sites.iter().enumerate() {
            graph.sites_by_fn[site.caller].push(idx);
            callee_sets[site.caller].extend(site.targets.iter().copied());
            if site.resolution == Resolution::Unique {
                unique_sets[site.caller].extend(site.targets.iter().copied());
            }
        }
        graph.callees = callee_sets.into_iter().map(Vec::from_iter).collect();
        graph.callees_unique = unique_sets.into_iter().map(Vec::from_iter).collect();
        graph
    }

    /// Aggregates the per-site resolution classes.
    pub fn stats(&self, symtab: &SymbolTable) -> GraphStats {
        let mut stats = GraphStats {
            functions: symtab.fns.len(),
            call_sites: self.sites.len(),
            ..GraphStats::default()
        };
        for site in &self.sites {
            match site.resolution {
                Resolution::Unique => stats.unique += 1,
                Resolution::Ambiguous => stats.ambiguous += 1,
                Resolution::External => stats.external += 1,
                Resolution::Unresolved => stats.unresolved += 1,
            }
        }
        stats
    }

    fn extract_file(
        &mut self,
        file_idx: usize,
        file: &FileModel,
        owner: &[Option<usize>],
        symtab: &SymbolTable,
    ) {
        let code = &file.code;
        for t in 0..code.len() {
            if code[t].kind != crate::lexer::TokenKind::Ident
                || code.get(t + 1).map(|n| n.text.as_str()) != Some("(")
            {
                continue;
            }
            let name = code[t].text.as_str();
            if KEYWORDS.contains(&name) {
                continue;
            }
            let Some(caller) = owner[t] else {
                continue; // not inside any fn body (const init, type decl)
            };
            let caller_info = &symtab.fns[caller];
            if caller_info.is_test {
                continue; // rules only look at production code
            }
            let span = &file.fns[caller_info.span];
            if t <= span.body_start || t >= span.body_end {
                continue; // in the signature, not the body
            }
            let prev = code.get(t.wrapping_sub(1)).map(|p| p.text.as_str());
            if prev == Some("fn") {
                continue; // a declaration, not a call
            }
            let is_method = prev == Some(".");
            let mut qualifier = None;
            let mut receiver_is_self = false;
            if is_method {
                receiver_is_self =
                    t >= 2 && code[t - 2].text == "self" && (t < 3 || code[t - 3].text != ".");
            } else if t >= 3 && code[t - 1].text == ":" && code[t - 2].text == ":" {
                let q = &code[t - 3];
                if q.kind == crate::lexer::TokenKind::Ident {
                    qualifier = Some(q.text.clone());
                }
            }
            let (targets, resolution) = resolve(
                symtab,
                caller_info,
                name,
                qualifier.as_deref(),
                is_method,
                receiver_is_self,
            );
            self.sites.push(CallSite {
                file: file_idx,
                caller,
                token: t,
                line: code[t].line,
                name: name.to_string(),
                qualifier,
                is_method,
                receiver_is_self,
                targets,
                resolution,
            });
        }
    }
}

/// Applies the suffix-resolution strategy for one site (module docs).
fn resolve(
    symtab: &SymbolTable,
    caller: &FnInfo,
    name: &str,
    qualifier: Option<&str>,
    is_method: bool,
    receiver_is_self: bool,
) -> (Vec<usize>, Resolution) {
    if !is_method && qualifier.is_none() && BUILTIN_FNS.contains(&name) {
        return (Vec::new(), Resolution::External);
    }
    let mut cands: Vec<usize> = symtab
        .candidates(name)
        .iter()
        .copied()
        .filter(|&id| !symtab.fns[id].is_test)
        .collect();
    if cands.is_empty() {
        return (Vec::new(), Resolution::External);
    }
    if is_method {
        cands.retain(|&id| symtab.fns[id].has_self);
        if cands.is_empty() {
            // Method syntax cannot reach a free fn: the receiver's type is
            // external, even though the name exists in the workspace.
            return (Vec::new(), Resolution::Unresolved);
        }
    }
    if let Some(q) = qualifier {
        match q {
            "crate" | "self" => {
                cands.retain(|&id| symtab.fns[id].crate_name == caller.crate_name);
            }
            "Self" => {
                cands.retain(|&id| {
                    symtab.fns[id].self_type.is_some()
                        && symtab.fns[id].self_type == caller.self_type
                });
            }
            _ => {
                cands.retain(|&id| {
                    let info = &symtab.fns[id];
                    info.self_type.as_deref() == Some(q)
                        || info.module_path.last().map(String::as_str) == Some(q)
                        || info.crate_name == q
                        || info.crate_name.replace('-', "_") == q
                });
            }
        }
        if cands.is_empty() {
            // The qualifier names something outside the workspace
            // (`std::mem::take`, `Arc::clone`, compat types).
            return (Vec::new(), Resolution::External);
        }
    }
    if is_method && receiver_is_self && caller.self_type.is_some() {
        let own: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| symtab.fns[id].self_type == caller.self_type)
            .collect();
        if !own.is_empty() {
            cands = own;
        }
    }
    if cands.len() > 1 {
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| symtab.fns[id].crate_name == caller.crate_name)
            .collect();
        if !same_crate.is_empty() {
            cands = same_crate;
        }
    }
    let resolution = if cands.len() == 1 {
        Resolution::Unique
    } else {
        Resolution::Ambiguous
    };
    (cands, resolution)
}
