//! Workspace discovery: finds and classifies every `.rs` source.
//!
//! Classification is by path, mirroring the workspace layout:
//!
//! * `crates/compat/**` — [`CrateKind::Compat`], exempt from all rules
//!   (offline stand-ins for crates.io APIs);
//! * `crates/cli/**`, `crates/bench/**`, `crates/lint/**`, `examples/**` —
//!   [`CrateKind::Tool`]: binaries and harnesses, allowed to print and
//!   panic, still forbidden from raw threads;
//! * every other `crates/*/` plus the facade `src/` — [`CrateKind::Library`];
//! * any file under a `tests/` or `benches/` directory is test code
//!   (production rules off for the whole file).
//!
//! Directories named `target`, `fixtures` and dot-directories are skipped —
//! lint fixtures *contain* seeded violations.

use crate::scan::{CrateKind, FileModel};
use std::path::{Path, PathBuf};

/// Scans the workspace rooted at `root`, returning a model per `.rs` file
/// (sorted by path) and the number of files read.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<FileModel>> {
    let mut paths = Vec::new();
    collect_rs_files(root, root, &mut paths)?;
    paths.sort();
    let mut models = Vec::with_capacity(paths.len());
    for rel in paths {
        let src = std::fs::read_to_string(root.join(&rel))?;
        models.push(classify_and_scan(rel, &src));
    }
    Ok(models)
}

/// Classifies `rel` (workspace-relative) and scans `src` into a model.
/// Public so the fixture tests can run single files through the same path.
pub fn classify_and_scan(rel: PathBuf, src: &str) -> FileModel {
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let kind = if parts.first().map(String::as_str) == Some("crates") {
        match parts.get(1).map(String::as_str) {
            Some("compat") => CrateKind::Compat,
            Some("cli") | Some("bench") | Some("lint") => CrateKind::Tool,
            _ => CrateKind::Library,
        }
    } else if parts.first().map(String::as_str) == Some("examples") {
        CrateKind::Tool
    } else {
        // Facade crate: src/, tests/.
        CrateKind::Library
    };
    let crate_name = if parts.first().map(String::as_str) == Some("crates") {
        parts.get(1).cloned().unwrap_or_default()
    } else {
        "temporal-kcore".to_string()
    };
    let is_test_file = parts
        .iter()
        .any(|p| p == "tests" || p == "benches" || p == "examples");
    let file_name = rel
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_default();
    let in_src = parts.iter().any(|p| p == "src");
    let is_crate_root = in_src
        && (file_name == "lib.rs"
            || file_name == "main.rs"
            || rel
                .parent()
                .and_then(Path::file_name)
                .is_some_and(|d| d == "bin"));
    FileModel::scan(rel, crate_name, kind, is_test_file, is_crate_root, src)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" || name == "fixtures" || name == "data" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}
