//! Item scanning: turns a lexed file into the model the rules run over.
//!
//! On top of the raw token stream this pass reconstructs just enough
//! structure for the rules to be scope-aware:
//!
//! * **test regions** — the brace span of any item annotated
//!   `#[cfg(test)]` (or any `cfg` attribute mentioning `test`), any
//!   `#[test]` function, and any `mod tests` block.  Rules treat code
//!   inside these regions as test code, where the production invariants
//!   (no panics, no raw threads, ...) deliberately do not apply;
//! * **function spans** — the body brace span of every `fn`, which is the
//!   scope unit of the intraprocedural `lock-order` analysis;
//! * **suppression pragmas** — `// tkc-lint: allow(rule, ...) — reason`
//!   comments.  A pragma on its own line covers the next source line; a
//!   trailing pragma covers its own line.  The justification is mandatory:
//!   a pragma without one is itself reported by the rules engine;
//! * **`#![forbid(unsafe_code)]`** presence, for the workspace-uniformity
//!   check on crate roots.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// How a file's crate participates in the rules (see [`crate::rules`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateKind {
    /// Library code serving production queries: `tkcore`, `temporal-graph`,
    /// `static-kcore`, `datasets`, and the facade crate's `src/`.
    Library,
    /// Binaries and dev tooling: `cli`, `bench`, `lint`, `examples/`.
    Tool,
    /// Offline stand-ins for crates.io dependencies (`crates/compat/*`);
    /// exempt from every rule — they mirror external APIs.
    Compat,
}

/// One suppression pragma parsed from a `//` comment.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rules the pragma suppresses (lower-case, as written).
    pub rules: Vec<String>,
    /// The human justification after the separator; empty if missing.
    pub justification: String,
    /// Line the pragma comment itself is on.
    pub comment_line: u32,
    /// Line the pragma applies to (its own line for a trailing comment,
    /// the next line for a comment alone on its line).
    pub applies_to: u32,
}

/// Body span of one `fn`, in indexes into [`FileModel::code`].
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name (`fn name(...)`).
    pub name: String,
    /// Index of the `fn` keyword token that declares it.
    pub decl_index: usize,
    /// Line of the `fn` keyword (where `// tkc-lint: hot` markers attach).
    pub decl_line: u32,
    /// Index of the opening `{` of the body.
    pub body_start: usize,
    /// Index of the matching closing `}` (exclusive end is `body_end + 1`).
    pub body_end: usize,
}

/// Everything the rules need to know about one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Path as discovered (workspace-relative when walking a workspace).
    pub path: PathBuf,
    /// Directory name of the owning crate (`tkcore`, `cli`, ...).
    pub crate_name: String,
    /// Rule participation class of the owning crate.
    pub kind: CrateKind,
    /// Whether the file as a whole is test/bench/example code (under a
    /// `tests/`, `benches/` or `examples/` directory).
    pub is_test_file: bool,
    /// Whether this file is a crate root (`src/lib.rs`, `src/main.rs`,
    /// `src/bin/*.rs`) — the places `#![forbid(unsafe_code)]` must live.
    pub is_crate_root: bool,
    /// Non-comment tokens, in source order.
    pub code: Vec<Token>,
    /// Parallel to `code`: whether the token sits inside a test region.
    pub in_test: Vec<bool>,
    /// Body spans of every `fn`, outermost first.
    pub fns: Vec<FnSpan>,
    /// Pragmas by the line they apply to.
    pub pragmas: BTreeMap<u32, Vec<Pragma>>,
    /// Lines carrying a `// tkc-lint: hot` marker, resolved to the line the
    /// marker applies to (same semantics as pragmas: a marker alone on its
    /// line covers the next line, a trailing marker covers its own line).  A
    /// function whose `fn` keyword sits on a marked line is a hot-path seed
    /// for the `hot-path-alloc` rule.
    pub hot_lines: std::collections::BTreeSet<u32>,
    /// Whether the file carries `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
}

impl FileModel {
    /// Lexes and scans `src`.  `path`/`crate_name`/`kind` classify the file
    /// for the rules; see [`crate::workspace`] for how a workspace walk
    /// assigns them.
    pub fn scan(
        path: PathBuf,
        crate_name: String,
        kind: CrateKind,
        is_test_file: bool,
        is_crate_root: bool,
        src: &str,
    ) -> Self {
        let tokens = lex(src);
        let mut code: Vec<Token> = Vec::with_capacity(tokens.len());
        let mut pragmas: BTreeMap<u32, Vec<Pragma>> = BTreeMap::new();
        let mut comment_queue: Vec<(u32, String)> = Vec::new();
        for token in tokens {
            if token.kind == TokenKind::LineComment {
                if !token.text.starts_with("///") && !token.text.starts_with("//!") {
                    comment_queue.push((token.line, token.text.clone()));
                }
            } else if !token.is_comment() {
                code.push(token);
            }
        }
        let has_forbid_unsafe = find_forbid_unsafe(&code);
        let in_test = mark_test_regions(&code);
        let fns = find_fns(&code);
        // A pragma trails code if any code token shares its line.
        let code_lines: std::collections::BTreeSet<u32> = code.iter().map(|t| t.line).collect();
        let mut hot_lines = std::collections::BTreeSet::new();
        for (line, text) in comment_queue {
            let applies_to = if code_lines.contains(&line) {
                line
            } else {
                line + 1
            };
            if is_hot_marker(&text) {
                hot_lines.insert(applies_to);
            } else if let Some(mut pragma) = parse_pragma(&text) {
                pragma.comment_line = line;
                pragma.applies_to = applies_to;
                pragmas.entry(pragma.applies_to).or_default().push(pragma);
            }
        }
        Self {
            path,
            crate_name,
            kind,
            is_test_file,
            is_crate_root,
            code,
            in_test,
            fns,
            pragmas,
            hot_lines,
            has_forbid_unsafe,
        }
    }

    /// The pragmas covering `line` that name `rule`.
    pub fn pragma_for(&self, line: u32, rule: &str) -> Option<&Pragma> {
        self.pragmas
            .get(&line)?
            .iter()
            .find(|p| p.rules.iter().any(|r| r == rule))
    }
}

/// Recognises a `// tkc-lint: hot` marker (optionally followed by a note
/// after the same separators pragmas accept).
fn is_hot_marker(comment: &str) -> bool {
    let body = comment.trim_start_matches('/').trim();
    let Some(rest) = body.strip_prefix("tkc-lint:") else {
        return false;
    };
    let rest = rest.trim_start();
    rest == "hot"
        || rest
            .strip_prefix("hot")
            .is_some_and(|r| r.starts_with([' ', '—', '-', ':']))
}

/// Parses `tkc-lint: allow(rule, ...) <sep> justification` from one `//`
/// comment; returns `None` for ordinary comments.  Accepted separators
/// between the rule list and the justification: `—`, `--`, `-`, `:`.
fn parse_pragma(comment: &str) -> Option<Pragma> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("tkc-lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_lowercase())
        .filter(|r| !r.is_empty())
        .collect();
    let mut justification = rest[close + 1..].trim();
    for sep in ["—", "--", "-", ":"] {
        if let Some(j) = justification.strip_prefix(sep) {
            justification = j.trim();
            break;
        }
    }
    Some(Pragma {
        rules,
        justification: justification.to_string(),
        comment_line: 0,
        applies_to: 0,
    })
}

/// Whether the token stream contains `#![forbid(unsafe_code)]`.
fn find_forbid_unsafe(code: &[Token]) -> bool {
    code.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    })
}

/// Marks every token inside a test region (see module docs).
fn mark_test_regions(code: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        // `#[...]` outer attribute: scan its bracket span.
        if code[i].text == "#" && i + 1 < code.len() && code[i + 1].text == "[" {
            let attr_end = match matching(code, i + 1, "[", "]") {
                Some(end) => end,
                None => break,
            };
            let attr = &code[i + 2..attr_end];
            let is_cfg_test = attr.first().is_some_and(|t| t.text == "cfg")
                && attr.iter().any(|t| t.text == "test");
            let is_test_attr = attr.len() == 1 && attr[0].text == "test";
            if is_cfg_test || is_test_attr {
                if let Some((start, end)) = item_body_after(code, attr_end + 1) {
                    mark(&mut in_test, start, end);
                    i = end + 1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        // `mod tests { ... }` without an attribute.
        if code[i].text == "mod"
            && code.get(i + 1).is_some_and(|t| t.text == "tests")
            && code.get(i + 2).is_some_and(|t| t.text == "{")
        {
            if let Some(end) = matching(code, i + 2, "{", "}") {
                mark(&mut in_test, i, end);
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    in_test
}

fn mark(in_test: &mut [bool], start: usize, end: usize) {
    let end = end.min(in_test.len() - 1);
    for flag in &mut in_test[start..=end] {
        *flag = true;
    }
}

/// Finds the brace span of the item starting at `from` (skipping further
/// attributes), or `None` if the item has no body (`;`-terminated).
fn item_body_after(code: &[Token], mut from: usize) -> Option<(usize, usize)> {
    // Skip stacked attributes: #[..] #[..] item.
    while from + 1 < code.len() && code[from].text == "#" && code[from + 1].text == "[" {
        from = matching(code, from + 1, "[", "]")? + 1;
    }
    let item_start = from;
    // Walk to the first `{` at this nesting level; give up at `;`.
    let mut j = from;
    while j < code.len() {
        match code[j].text.as_str() {
            "{" => {
                let end = matching(code, j, "{", "}")?;
                return Some((item_start, end));
            }
            ";" => return None,
            "(" => j = matching(code, j, "(", ")")? + 1,
            "[" => j = matching(code, j, "[", "]")? + 1,
            _ => j += 1,
        }
    }
    None
}

/// Index of the token closing the bracket opened at `open`.
fn matching(code: &[Token], open: usize, open_text: &str, close_text: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (j, token) in code.iter().enumerate().skip(open) {
        if token.text == open_text {
            depth += 1;
        } else if token.text == close_text {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Finds the body span of every `fn` (including nested ones).
fn find_fns(code: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for i in 0..code.len() {
        if code[i].kind != TokenKind::Ident || code[i].text != "fn" {
            continue;
        }
        let Some(name_token) = code.get(i + 1) else {
            continue;
        };
        if name_token.kind != TokenKind::Ident {
            continue; // `fn(...)` type position
        }
        // Walk the signature to the body `{`; trait method decls end in `;`.
        let mut j = i + 2;
        while j < code.len() {
            match code[j].text.as_str() {
                "{" => {
                    if let Some(end) = matching(code, j, "{", "}") {
                        fns.push(FnSpan {
                            name: name_token.text.clone(),
                            decl_index: i,
                            decl_line: code[i].line,
                            body_start: j,
                            body_end: end,
                        });
                    }
                    break;
                }
                ";" => break,
                "(" => match matching(code, j, "(", ")") {
                    Some(end) => j = end + 1,
                    None => break,
                },
                "<" | ">" | "-" | "where" | "&" | "'" | ":" | "," | "]" | "[" | "::" => j += 1,
                _ => j += 1,
            }
        }
    }
    fns
}
