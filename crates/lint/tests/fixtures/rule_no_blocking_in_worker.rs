//! Fixture: `no-blocking-in-worker` — a blocking call reached *through a
//! helper* from a closure handed to `ExecPool::spawn`, a blocking call
//! directly in a spawned closure, a pragma-suppressed worker wait, and a
//! main-thread wait that must NOT fire.

pub struct ExecPool;

impl ExecPool {
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, task: F) {
        task();
    }
}

pub struct Ticket;

impl Ticket {
    pub fn wait(&self) {}
}

/// Blocks — and is reachable from a worker closure: finding (in here).
fn drain(ticket: &Ticket) {
    ticket.wait(); // worker-reachable blocking call: finding
}

pub fn fan_out(pool: &ExecPool, ticket: &'static Ticket) {
    pool.spawn(move || drain(ticket));
    pool.spawn(move || ticket.wait()); // blocking directly in the closure: finding
}

/// The same wait, justified: the pool is allowed to park a worker here.
fn drain_checked(ticket: &Ticket) {
    // tkc-lint: allow(no-blocking-in-worker) — fixture: the ticket is completed before this task is ever queued
    ticket.wait();
}

pub fn fan_out_checked(pool: &ExecPool, ticket: &'static Ticket) {
    pool.spawn(move || drain_checked(ticket));
}

/// Waiting on the main thread is the intended use: no finding.
pub fn block_on(ticket: &Ticket) {
    ticket.wait();
}
