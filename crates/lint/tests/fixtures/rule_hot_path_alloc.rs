//! Fixture: `hot-path-alloc` — allocations in a `// tkc-lint: hot` seed, in
//! a function only *reachable* from the seed, a pragma-suppressed hot
//! allocation, `Vec::new` inside vs. outside a loop, and an identical
//! allocation in a cold function that must NOT fire.

pub struct Sweep {
    data: Vec<u64>,
}

impl Sweep {
    // tkc-lint: hot
    pub fn advance(&self) -> Vec<u64> {
        let copy = self.data.clone(); // .clone( in the hot seed: finding
        self.merge(copy)
    }

    /// Not annotated, but uniquely reachable from the hot seed above.
    fn merge(&self, mut acc: Vec<u64>) -> Vec<u64> {
        acc.extend(self.data.to_vec()); // .to_vec( reachable from seed: finding
        acc
    }

    // tkc-lint: hot
    pub fn label(&self) -> String {
        // tkc-lint: allow(hot-path-alloc) — fixture: rendered once per query, amortised by the result cache
        format!("{} windows", self.data.len())
    }

    // tkc-lint: hot
    pub fn totals(&self) -> u64 {
        let mut total = 0;
        for x in &self.data {
            let scratch: Vec<u64> = Vec::new(); // Vec::new in a loop: finding
            total += *x + scratch.len() as u64;
        }
        let outside: Vec<u64> = Vec::new(); // outside any loop: no finding
        total + outside.len() as u64
    }

    /// Cold: same allocation as the seed, but not hot-reachable: no finding.
    pub fn snapshot(&self) -> Vec<u64> {
        self.data.clone()
    }
}
