//! Fixture: a crate root (linted as `src/lib.rs`) missing
//! `#![forbid(unsafe_code)]` — one active `forbid-unsafe` finding.

pub fn answer() -> u32 {
    42
}
