//! Fixture: `poison-safe-locks` — one active `.lock().unwrap()`, one active
//! `.lock().expect(..)`, one suppressed, and the sanctioned helper form.

use std::sync::{Mutex, MutexGuard, PoisonError};

pub struct Cache {
    entries: Mutex<Vec<u64>>,
}

impl Cache {
    pub fn bad_unwrap(&self) -> usize {
        self.entries.lock().unwrap().len() // line 12: active finding
    }

    pub fn bad_expect(&self) -> usize {
        self.entries.lock().expect("cache lock").len() // line 16: active finding
    }

    pub fn suppressed(&self) -> usize {
        // tkc-lint: allow(poison-safe-locks) — fixture: poisoning is fatal here by design
        self.entries.lock().unwrap().len()
    }

    pub fn sanctioned(&self) -> MutexGuard<'_, Vec<u64>> {
        // The shared-helper idiom: recovery instead of unwrap.
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
