//! Fixture: `no-println` — active `println!`/`eprintln!`/`dbg!`, one
//! suppressed, plus decoys that must not match.

pub fn violations(x: u64) -> u64 {
    println!("serving {x}"); // line 5: active finding
    eprintln!("warn: {x}"); // line 6: active finding
    let y = dbg!(x + 1); // line 7: active finding
    y
}

pub fn suppressed(x: u64) {
    // tkc-lint: allow(no-println) — fixture: one-off startup banner requested by ops
    println!("booted with {x}");
}

/// Decoys: `println!` in a doc comment, a string, and a method named print.
pub fn decoys(x: u64) -> String {
    let template = "println!(\"not code\")";
    let raw = r#"eprintln!("also not code")"#;
    format!("{template} {raw} {x}")
}
