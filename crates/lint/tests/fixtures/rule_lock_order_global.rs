//! Fixture: `lock-order-global` — an ABBA cycle that only exists when two
//! functions are *composed* (each one is innocent in isolation, so the
//! intraprocedural `lock-order` rule cannot see it), a cross-function
//! re-entrant self-deadlock, an acyclic helper call that must NOT be
//! flagged, and a suppressed pair.

use std::sync::{Mutex, PoisonError};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
    c: Mutex<u64>,
}

impl Pair {
    fn take_a(&self) -> u64 {
        *lock(&self.a)
    }

    fn take_b(&self) -> u64 {
        *lock(&self.b)
    }

    fn take_c(&self) -> u64 {
        *lock(&self.c)
    }

    /// Holds `a` across a call whose callee acquires `b`: global edge a→b.
    pub fn a_then_b(&self) -> u64 {
        let a = lock(&self.a);
        *a + self.take_b() // cross edge a->b (cycle with b->a below): finding
    }

    /// Holds `b` across a call whose callee acquires `a`: global edge b→a —
    /// composed with [`Pair::a_then_b`], a cross-function ABBA cycle.
    pub fn b_then_a(&self) -> u64 {
        let b = lock(&self.b);
        *b + self.take_a() // cross edge b->a: finding
    }

    /// Holds `c` across a call whose callee re-acquires `c`: a guaranteed
    /// self-deadlock that no single-function analysis can see.
    pub fn reentrant_via_helper(&self) -> u64 {
        let c = lock(&self.c);
        *c + self.take_c() // cross self-loop c->c: finding
    }

    /// Holds `a` across a call that only takes `c` (and nothing ever takes
    /// `a` while holding `c`): acyclic, no finding.
    pub fn ordered(&self) -> u64 {
        let a = lock(&self.a);
        *a + self.take_c()
    }
}

pub struct Suppressed {
    x: Mutex<u64>,
    y: Mutex<u64>,
}

impl Suppressed {
    fn take_x(&self) -> u64 {
        *lock(&self.x)
    }

    fn take_y(&self) -> u64 {
        *lock(&self.y)
    }

    pub fn xy(&self) -> u64 {
        let x = lock(&self.x);
        // tkc-lint: allow(lock-order-global) — fixture: the y->x path below is never taken while `x` is held
        *x + self.take_y()
    }

    pub fn yx(&self) -> u64 {
        let y = lock(&self.y);
        // tkc-lint: allow(lock-order-global) — fixture: see xy(); callers serialise these two paths
        *y + self.take_x()
    }
}
