//! Fixture: `lock-order` — an ABBA cycle between two named locks, a
//! re-entrant self-deadlock, an ordered (acyclic) nesting that must NOT be
//! flagged, and a suppressed edge.

use std::sync::{Mutex, PoisonError};

pub struct Engine {
    cache: Mutex<Vec<u64>>,
    stats: Mutex<u64>,
    log: Mutex<Vec<String>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Engine {
    /// Takes `cache` then `stats` ...
    pub fn ab_path(&self) {
        let guard = lock(&self.cache);
        let mut stats = lock(&self.stats); // edge cache -> stats (cyclic: finding)
        *stats += guard.len() as u64;
    }

    /// ... while this path takes `stats` then `cache`: ABBA.
    pub fn ba_path(&self) {
        let stats = lock(&self.stats);
        let guard = lock(&self.cache); // edge stats -> cache (cyclic: finding)
        let _ = (guard.len(), *stats);
    }

    /// Re-acquiring a non-reentrant mutex while holding it: self-loop.
    pub fn reentrant(&self) -> u64 {
        let first = lock(&self.stats);
        let second = lock(&self.stats); // self-loop: finding
        *first + *second
    }

    /// Ordered nesting (log only ever acquired *after* cache, never the
    /// reverse): acyclic, no finding.
    pub fn ordered(&self) {
        let guard = lock(&self.cache);
        let mut log = lock(&self.log);
        log.push(format!("{} entries", guard.len()));
    }

    /// Scoped guards never overlap: no finding.
    pub fn scoped(&self) {
        {
            let mut log = lock(&self.log);
            log.clear();
        }
        let guard = lock(&self.cache);
        let _ = guard.len();
    }

    /// Dropped guard before the next acquisition: no finding.
    pub fn dropped(&self) {
        let guard = lock(&self.cache);
        drop(guard);
        let mut log = lock(&self.log);
        log.clear();
    }
}

pub struct Suppressed {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Suppressed {
    pub fn ab(&self) {
        let a = lock(&self.a);
        // tkc-lint: allow(lock-order) — fixture: the b->a path is unreachable while `a` is held
        let b = lock(&self.b);
        let _ = (*a, *b);
    }

    pub fn ba(&self) {
        let b = lock(&self.b);
        // tkc-lint: allow(lock-order) — fixture: see ab(); ordering enforced by the caller
        let a = lock(&self.a);
        let _ = (*a, *b);
    }
}
