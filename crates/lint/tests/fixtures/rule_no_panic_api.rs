//! Fixture: `no-panic-api` — active `unwrap`/`expect`/`panic!`/
//! `unreachable!`, one suppressed case, and `#[cfg(test)]` exclusion.

pub fn bad_unwrap(values: &[u32]) -> u32 {
    *values.first().unwrap() // line 5: active finding
}

pub fn bad_expect(values: &[u32]) -> u32 {
    *values.last().expect("non-empty") // line 9: active finding
}

pub fn bad_panic(flag: bool) {
    if flag {
        panic!("boom"); // line 14: active finding
    }
}

pub fn bad_unreachable(x: u8) -> u8 {
    match x {
        0..=254 => x + 1,
        _ => unreachable!(), // line 21: active finding
    }
}

pub fn suppressed(values: &[u32]) -> u32 {
    // tkc-lint: allow(no-panic-api) — fixture: slice verified non-empty by the caller's contract
    *values.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = [1u32, 2];
        assert_eq!(super::suppressed(&v), 1);
        let _ = v.first().unwrap();
        if v.len() > 2 {
            panic!("unreachable in tests is fine");
        }
    }
}
