//! Lexer torture fixture: every construct below would make a naive
//! string-searching "linter" report a violation.  A correct lexer reports
//! zero findings for this file (linted as tkcore library code).

/// Doc comment decoy: thread::spawn(|| ()); println!("hi"); .lock().unwrap()
pub struct Torture<'a> {
    /// Lifetimes vs char literals below must not confuse the lexer.
    pub name: &'a str,
}

pub fn raw_strings() -> (&'static str, String) {
    // The raw strings contain decoys that are *data*, not code.
    let plain = r"thread::spawn inside a raw string";
    let hashed = r#"panic!("not a real panic") and "quotes" and .lock().unwrap()"#;
    let nested_hashes = r##"ends with "# but not here: println!("x")"##;
    let bytes = br#"thread::scope(|s| s.spawn(..))"#;
    let escaped = "a \" quote then thread::spawn and a backslash \\";
    let plain_bytes = b"std::thread::spawn(|| ()).join().unwrap()";
    let raw_bytes = br"Mutex::lock().unwrap() inside a raw byte string";
    let nested_raw_bytes = br##"ends with "# inside: .wait() and panic!("x")"##;
    let swapped_prefix = rb"invalid-Rust rb literal: thread::spawn decoy";
    let multiline_bytes = b"first line with .unwrap()
second line with panic!(\"no\")";
    let _ = (plain, nested_hashes, bytes, escaped);
    let _ = (plain_bytes, raw_bytes, nested_raw_bytes, swapped_prefix);
    let _ = multiline_bytes;
    (hashed, format!("{plain}"))
}

/* Nested block comments are one comment in Rust:
   /* inner comment with decoys: thread::spawn(|| ()); unwrap() */
   still inside the outer comment: panic!("boom")
*/
pub fn chars_and_lifetimes<'b>(x: &'b [char]) -> char {
    let quote = '\'';
    let newline = '\n';
    let underscore = '_';
    let paren = '(';
    let letter = 'a'; // char literal, not lifetime 'a
    let byte = b'x';
    let _ = (quote, newline, underscore, paren, byte);
    let r#fn = x.first().copied(); // raw identifier, not a raw string
    r#fn.unwrap_or(letter) // tkc-lint: allow(no-panic-api) — false positive guard: unwrap_or is not unwrap
}

pub fn numbers_and_ranges() -> usize {
    let spread: Vec<usize> = (1..=3).collect();
    let float = 1.5_f64;
    let hex = 0xFF_usize;
    let _ = float;
    spread.len() + hex
}
