//! Fixture: `pragma` — a suppression without a justification and one
//! naming an unknown rule are themselves findings.

pub fn unjustified(values: &[u32]) -> u32 {
    // tkc-lint: allow(no-panic-api)
    *values.first().unwrap()
}

pub fn unknown_rule(values: &[u32]) -> u32 {
    // tkc-lint: allow(no-unicorns) — fixture: there is no such rule
    values.iter().sum()
}
