//! Fixture: `no-raw-threads` — one active violation, one suppressed, one
//! test-scoped (exempt).

use std::thread;

pub fn violation() {
    let handle = std::thread::spawn(|| 40 + 2); // line 7: active finding
    let _ = handle.join();
}

pub fn suppressed() {
    // tkc-lint: allow(no-raw-threads) — fixture: measuring bare-thread overhead against the pool
    let handle = thread::spawn(|| ());
    let _ = handle.join();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_threads() {
        let handle = std::thread::spawn(|| ());
        handle.join().unwrap();
    }
}
