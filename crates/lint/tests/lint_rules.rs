//! End-to-end rule tests: each fixture under `tests/fixtures/` seeds known
//! violations (one positive and one pragma-suppressed case per rule) plus
//! decoys that must not fire.  Fixtures are linted under synthetic workspace
//! paths so crate classification follows the path, exactly as in a real run.
//! The `fixtures/` directory itself is skipped by the workspace walk, so the
//! seeded violations never pollute `cargo run -p tkc-lint`.

use tkc_lint::{lint_source, Finding};

/// Active (non-suppressed) findings for `rule`, as (line, message) pairs.
fn active(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed.is_none())
        .map(|f| f.line)
        .collect()
}

/// Suppressed findings for `rule`, as lines.
fn suppressed(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed.is_some())
        .map(|f| f.line)
        .collect()
}

#[test]
fn the_lexer_torture_fixture_is_clean() {
    // Raw strings, nested block comments, char-vs-lifetime, raw identifiers:
    // every decoy must be recognised as data, even under the strictest
    // classification (tkcore library code, where no-panic-api applies).
    let findings = lint_source(
        "crates/tkcore/src/torture.rs",
        include_str!("fixtures/lexer_torture.rs"),
    );
    assert!(
        findings.is_empty(),
        "expected zero findings, got: {findings:?}"
    );
}

#[test]
fn no_raw_threads_detects_spawn_and_honours_pragma_and_tests() {
    let findings = lint_source(
        "crates/tkcore/src/fixture.rs",
        include_str!("fixtures/rule_no_raw_threads.rs"),
    );
    assert_eq!(active(&findings, "no-raw-threads"), vec![7]);
    assert_eq!(suppressed(&findings, "no-raw-threads"), vec![13]);
    // The #[cfg(test)] module uses thread::spawn and .unwrap() freely:
    // neither no-raw-threads nor no-panic-api may fire there.
    assert!(findings.iter().all(|f| f.line < 17), "{findings:?}");
}

#[test]
fn no_raw_threads_exempts_the_exec_module() {
    let findings = lint_source(
        "crates/tkcore/src/exec.rs",
        "pub fn pool() { let h = std::thread::spawn(|| ()); let _ = h.join(); }\n",
    );
    assert!(
        active(&findings, "no-raw-threads").is_empty(),
        "{findings:?}"
    );
}

#[test]
fn poison_safe_locks_detects_unwrap_and_expect() {
    // A library crate outside tkcore so no-panic-api stays out of the way.
    let findings = lint_source(
        "crates/skyline/src/fixture.rs",
        include_str!("fixtures/rule_poison_safe_locks.rs"),
    );
    assert_eq!(active(&findings, "poison-safe-locks"), vec![12, 16]);
    assert_eq!(suppressed(&findings, "poison-safe-locks"), vec![21]);
    // The `.lock().unwrap_or_else(PoisonError::into_inner)` helper form is
    // the sanctioned idiom and must not match.
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn poison_safe_locks_ignores_tool_crates() {
    let findings = lint_source(
        "crates/cli/src/fixture.rs",
        "pub fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n",
    );
    assert!(
        active(&findings, "poison-safe-locks").is_empty(),
        "{findings:?}"
    );
}

#[test]
fn no_panic_api_detects_the_panic_family() {
    let findings = lint_source(
        "crates/tkcore/src/fixture.rs",
        include_str!("fixtures/rule_no_panic_api.rs"),
    );
    assert_eq!(active(&findings, "no-panic-api"), vec![5, 9, 14, 21]);
    assert_eq!(suppressed(&findings, "no-panic-api"), vec![27]);
    // Nothing fires inside the #[cfg(test)] module (lines 30..).
    assert!(findings.iter().all(|f| f.line < 30), "{findings:?}");
}

#[test]
fn no_panic_api_only_applies_to_core_crates() {
    let src = "pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n";
    let core = lint_source("crates/temporal-graph/src/fixture.rs", src);
    assert_eq!(active(&core, "no-panic-api"), vec![1]);
    let other = lint_source("crates/skyline/src/fixture.rs", src);
    assert!(active(&other, "no-panic-api").is_empty(), "{other:?}");
}

#[test]
fn lock_order_flags_abba_reentrancy_and_honours_pragma() {
    let findings = lint_source(
        "crates/skyline/src/locks.rs",
        include_str!("fixtures/rule_lock_order.rs"),
    );
    // ABBA pair (cache->stats at 21, stats->cache at 28) plus the
    // re-entrant self-loop on `stats` at 35.
    assert_eq!(active(&findings, "lock-order"), vec![21, 28, 35]);
    // The a/b pair is a cycle too, but both edges carry pragmas.
    assert_eq!(suppressed(&findings, "lock-order"), vec![75, 82]);
    // `ordered`, `scoped` and `dropped` (acyclic or non-overlapping
    // guards) must not be flagged.
    assert!(
        !findings.iter().any(|f| (40..=63).contains(&f.line)),
        "{findings:?}"
    );
}

#[test]
fn lock_order_global_flags_composed_abba_and_cross_fn_reentrancy() {
    let findings = lint_source(
        "crates/skyline/src/global_locks.rs",
        include_str!("fixtures/rule_lock_order_global.rs"),
    );
    // The composed ABBA pair (a_then_b at 35, b_then_a at 42) plus the
    // helper-mediated re-entrant self-loop at 49.  Each function is clean
    // in isolation — the intra rule must stay silent.
    assert_eq!(active(&findings, "lock-order-global"), vec![35, 42, 49]);
    assert!(active(&findings, "lock-order").is_empty(), "{findings:?}");
    // The x/y pair cycles too, but both call sites carry pragmas.
    assert_eq!(suppressed(&findings, "lock-order-global"), vec![77, 83]);
    // `ordered` (a held across a call that only takes c) is acyclic.
    assert!(
        !findings.iter().any(|f| f.line == 56),
        "acyclic composition must not fire: {findings:?}"
    );
}

#[test]
fn no_blocking_in_worker_follows_calls_from_spawned_closures() {
    let findings = lint_source(
        "crates/skyline/src/worker.rs",
        include_str!("fixtures/rule_no_blocking_in_worker.rs"),
    );
    // `drain` (reached through a closure handed to ExecPool::spawn) waits
    // at 22; the second closure waits inline at 27.
    assert_eq!(active(&findings, "no-blocking-in-worker"), vec![22, 27]);
    assert_eq!(suppressed(&findings, "no-blocking-in-worker"), vec![33]);
    // `block_on` waits on the main thread: out of worker reach.
    assert!(
        !findings.iter().any(|f| f.line == 42),
        "main-thread wait must not fire: {findings:?}"
    );
}

#[test]
fn hot_path_alloc_covers_seeds_and_their_unique_callees() {
    let findings = lint_source(
        "crates/skyline/src/hot.rs",
        include_str!("fixtures/rule_hot_path_alloc.rs"),
    );
    // `.clone(` in the seed (13), `.to_vec(` in a fn only reachable from
    // the seed (19), `Vec::new` inside a loop (33).
    assert_eq!(active(&findings, "hot-path-alloc"), vec![13, 19, 33]);
    assert_eq!(suppressed(&findings, "hot-path-alloc"), vec![26]);
    // The reachable finding names its seed.
    assert!(
        findings
            .iter()
            .any(|f| f.line == 19 && f.message.contains("reachable from hot seed")),
        "{findings:?}"
    );
    // `Vec::new` outside a loop (36) and the cold `.clone(` (42) are fine.
    assert!(
        !findings.iter().any(|f| f.line == 36 || f.line == 42),
        "{findings:?}"
    );
}

#[test]
fn no_println_detects_output_macros_and_skips_decoys() {
    let findings = lint_source(
        "crates/skyline/src/out.rs",
        include_str!("fixtures/rule_no_println.rs"),
    );
    assert_eq!(active(&findings, "no-println"), vec![5, 6, 7]);
    assert_eq!(suppressed(&findings, "no-println"), vec![13]);
    // Doc-comment and string decoys (lines 16..) must not fire.
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn no_println_allows_tool_crates() {
    let findings = lint_source(
        "crates/cli/src/fixture.rs",
        "pub fn banner() { println!(\"tkc\"); }\n",
    );
    assert!(active(&findings, "no-println").is_empty(), "{findings:?}");
}

#[test]
fn forbid_unsafe_fires_on_crate_roots_only() {
    let missing = lint_source(
        "crates/skyline/src/lib.rs",
        include_str!("fixtures/rule_forbid_unsafe_missing.rs"),
    );
    assert_eq!(active(&missing, "forbid-unsafe"), vec![1]);

    let present = lint_source(
        "crates/skyline/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn answer() -> u32 { 42 }\n",
    );
    assert!(active(&present, "forbid-unsafe").is_empty(), "{present:?}");

    // Non-root modules never need the attribute.
    let module = lint_source(
        "crates/skyline/src/helpers.rs",
        include_str!("fixtures/rule_forbid_unsafe_missing.rs"),
    );
    assert!(active(&module, "forbid-unsafe").is_empty(), "{module:?}");
}

#[test]
fn unjustified_or_unknown_pragmas_are_findings() {
    let findings = lint_source(
        "crates/skyline/src/fixture.rs",
        include_str!("fixtures/rule_pragma.rs"),
    );
    assert_eq!(active(&findings, "pragma"), vec![5, 10]);
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn compat_crates_are_exempt_entirely() {
    let findings = lint_source(
        "crates/compat/rand/src/lib.rs",
        "pub fn f() { println!(\"x\"); let _ = std::thread::spawn(|| ()); }\n",
    );
    assert!(findings.is_empty(), "{findings:?}");
}
