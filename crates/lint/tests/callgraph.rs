//! Integration tests of the analysis stage over the public API: symbol-table
//! construction, impl-method resolution, and the composition property of the
//! global lock-order rule (each half is innocent; only the composed pair
//! closes a cycle).

use tkc_lint::{analyze, classify_and_scan, lint_source, FileModel, Finding, Resolution};

fn model(path: &str, src: &str) -> FileModel {
    classify_and_scan(std::path::PathBuf::from(path), src)
}

fn active(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed.is_none())
        .map(|f| f.line)
        .collect()
}

#[test]
fn method_calls_resolve_to_the_enclosing_impl() {
    // Two impls define `step`; a `self.step()` call inside `Widget::run`
    // must resolve uniquely to `Widget::step`, not to both.
    let src = "pub struct Widget;\n\
               pub struct Gadget;\n\
               impl Widget {\n\
                   fn step(&self) -> u32 { 1 }\n\
                   pub fn run(&self) -> u32 { self.step() }\n\
               }\n\
               impl Gadget {\n\
                   fn step(&self) -> u32 { 2 }\n\
               }\n";
    let files = [model("crates/skyline/src/widgets.rs", src)];
    let (symtab, graph) = analyze(&files);
    let site = graph
        .sites
        .iter()
        .find(|s| s.name == "step")
        .expect("the self.step() call site is extracted");
    assert!(site.is_method && site.receiver_is_self, "{site:?}");
    assert_eq!(site.resolution, Resolution::Unique);
    assert_eq!(site.targets.len(), 1);
    let target = &symtab.fns[site.targets[0]];
    assert_eq!(target.self_type.as_deref(), Some("Widget"));
    assert_eq!(target.name, "step");
    assert_eq!(target.crate_name, "skyline");
}

#[test]
fn qualified_names_carry_crate_and_impl_type() {
    let src = "pub struct Widget;\n\
               impl Widget {\n\
                   pub fn run(&self) {}\n\
               }\n\
               pub fn free() {}\n";
    let files = [model("crates/skyline/src/widgets.rs", src)];
    let (symtab, _) = analyze(&files);
    let names: Vec<String> = symtab.fns.iter().map(|f| f.qualified()).collect();
    assert!(
        names.iter().any(|n| n == "skyline::Widget::run"),
        "{names:?}"
    );
    assert!(names.iter().any(|n| n == "skyline::free"), "{names:?}");
}

/// One lock-ordered path: hold `a`, call a helper that takes `b`.
const HALF_AB: &str = "use std::sync::{Mutex, PoisonError};\n\
    fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {\n\
        m.lock().unwrap_or_else(PoisonError::into_inner)\n\
    }\n\
    pub struct Pair { a: Mutex<u64>, b: Mutex<u64> }\n\
    impl Pair {\n\
        fn take_a(&self) -> u64 { *lock(&self.a) }\n\
        fn take_b(&self) -> u64 { *lock(&self.b) }\n\
        pub fn a_then_b(&self) -> u64 {\n\
            let a = lock(&self.a);\n\
            *a + self.take_b()\n\
        }\n\
    }\n";

/// The reverse path; composed with [`HALF_AB`] it closes an ABBA cycle.
const HALF_BA: &str = "impl Pair {\n\
    pub fn b_then_a(&self) -> u64 {\n\
        let b = lock(&self.b);\n\
        *b + self.take_a()\n\
    }\n\
}\n";

#[test]
fn a_lock_cycle_needs_both_composed_functions() {
    // Each half alone is acyclic: no finding.
    let half = lint_source("crates/skyline/src/locks.rs", HALF_AB);
    assert!(
        active(&half, "lock-order-global").is_empty(),
        "one direction alone must be acyclic: {half:?}"
    );
    // Composed, the two held-across-call edges form a→b→a: both call
    // sites are findings.
    let composed = format!("{HALF_AB}{HALF_BA}");
    let both = lint_source("crates/skyline/src/locks.rs", &composed);
    assert_eq!(active(&both, "lock-order-global").len(), 2, "{both:?}");
}
