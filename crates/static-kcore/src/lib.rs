//! Static (non-temporal) k-core decomposition.
//!
//! A *k-core* of a simple undirected graph is the maximal induced subgraph in
//! which every vertex has at least `k` neighbours (Seidman 1983).  This crate
//! provides the classic substrate the temporal algorithms are built on:
//!
//! * [`StaticGraph`] — a simple undirected graph over dense `u32` vertex ids,
//!   built from an edge list (parallel edges and self loops are collapsed /
//!   dropped);
//! * [`peel_k_core`] — the peeling algorithm that repeatedly removes vertices
//!   of degree `< k`;
//! * [`CoreDecomposition`] — the full core-number assignment computed with
//!   the O(n + m) bin-sort algorithm of Batagelj & Zaveršnik, from which
//!   `kmax` (the paper's dataset statistic) and any k-core can be read off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decomposition;
mod graph;
mod peel;

pub use decomposition::CoreDecomposition;
pub use graph::StaticGraph;
pub use peel::{k_core_vertices, peel_k_core};

/// Vertex identifier, matching `temporal_graph::VertexId`.
pub type VertexId = u32;
