use crate::{StaticGraph, VertexId};

/// The full core decomposition of a graph: the *core number* of every vertex,
/// i.e. the largest `k` such that the vertex belongs to the k-core.
///
/// Computed with the O(n + m) bin-sort peeling algorithm of Batagelj &
/// Zaveršnik (2003).
#[derive(Debug, Clone)]
pub struct CoreDecomposition {
    core_numbers: Vec<u32>,
    kmax: u32,
}

impl CoreDecomposition {
    /// Computes the core decomposition of `graph`.
    pub fn compute(graph: &StaticGraph) -> Self {
        let n = graph.num_vertices();
        if n == 0 {
            return Self {
                core_numbers: Vec::new(),
                kmax: 0,
            };
        }
        let mut degree: Vec<usize> = (0..n as VertexId).map(|u| graph.degree(u)).collect();
        let max_degree = degree.iter().copied().max().unwrap_or(0);

        // bin[d] = index of the first vertex with degree d in `order`.
        let mut bin = vec![0usize; max_degree + 2];
        for &d in &degree {
            bin[d + 1] += 1;
        }
        for d in 1..bin.len() {
            bin[d] += bin[d - 1];
        }
        let mut order = vec![0 as VertexId; n];
        let mut pos = vec![0usize; n];
        let mut cursor = bin.clone();
        for u in 0..n {
            let d = degree[u];
            order[cursor[d]] = u as VertexId;
            pos[u] = cursor[d];
            cursor[d] += 1;
        }
        // `bin[d]` must now point at the first vertex of degree >= d.
        // (cursor consumed it; recompute prefix starts)
        let mut bin_start = vec![0usize; max_degree + 2];
        bin_start[..].copy_from_slice(&bin);

        let mut core_numbers = vec![0u32; n];
        for i in 0..n {
            let u = order[i];
            let du = degree[u as usize];
            core_numbers[u as usize] = du as u32;
            for &v in graph.neighbors(u) {
                let dv = degree[v as usize];
                if dv > du {
                    // Move v to the front of its bin and shrink its degree.
                    let pv = pos[v as usize];
                    let first = bin_start[dv];
                    let w = order[first];
                    if v != w {
                        order.swap(pv, first);
                        pos[v as usize] = first;
                        pos[w as usize] = pv;
                    }
                    bin_start[dv] += 1;
                    degree[v as usize] -= 1;
                }
            }
        }
        let kmax = core_numbers.iter().copied().max().unwrap_or(0);
        Self { core_numbers, kmax }
    }

    /// The core number of vertex `u`.
    #[inline]
    pub fn core_number(&self, u: VertexId) -> u32 {
        self.core_numbers[u as usize]
    }

    /// Core numbers for all vertices, indexed by vertex id.
    #[inline]
    pub fn core_numbers(&self) -> &[u32] {
        &self.core_numbers
    }

    /// The maximum core number in the graph (`kmax` in the paper's Table III).
    #[inline]
    pub fn kmax(&self) -> u32 {
        self.kmax
    }

    /// Vertices belonging to the k-core (core number `>= k`), sorted by id.
    pub fn k_core(&self, k: u32) -> Vec<VertexId> {
        self.core_numbers
            .iter()
            .enumerate()
            .filter_map(|(u, &c)| (c >= k).then_some(u as VertexId))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::k_core_vertices;

    fn graph() -> StaticGraph {
        StaticGraph::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3), // 4-clique: core number 3
                (3, 4),
                (4, 5), // path: core number 1
                (5, 6),
                (6, 4), // triangle 4-5-6: core number 2
            ],
        )
    }

    #[test]
    fn core_numbers_match_expectation() {
        let d = CoreDecomposition::compute(&graph());
        assert_eq!(d.core_numbers(), &[3, 3, 3, 3, 2, 2, 2]);
        assert_eq!(d.kmax(), 3);
        assert_eq!(d.k_core(3), vec![0, 1, 2, 3]);
        assert_eq!(d.k_core(2).len(), 7);
    }

    #[test]
    fn agrees_with_peeling_for_every_k() {
        let g = graph();
        let d = CoreDecomposition::compute(&g);
        for k in 0..=(d.kmax() + 1) {
            assert_eq!(d.k_core(k), k_core_vertices(&g, k as usize), "k = {k}");
        }
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let g = StaticGraph::from_edges(4, [(0, 1)]);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.core_number(2), 0);
        assert_eq!(d.core_number(3), 0);
        assert_eq!(d.core_number(0), 1);
        assert_eq!(d.kmax(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = StaticGraph::from_edges(0, std::iter::empty());
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.kmax(), 0);
        assert!(d.core_numbers().is_empty());
        assert!(d.k_core(1).is_empty());
    }

    #[test]
    fn random_graphs_agree_with_peeling() {
        // Deterministic pseudo-random edges (LCG) so the test needs no rand dep here.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let n = 30 + (trial % 5) * 10;
            let m = 3 * n;
            let edges: Vec<(VertexId, VertexId)> = (0..m)
                .map(|_| {
                    (
                        (next() % n as u64) as VertexId,
                        (next() % n as u64) as VertexId,
                    )
                })
                .collect();
            let g = StaticGraph::from_edges(n, edges);
            let d = CoreDecomposition::compute(&g);
            for k in 0..=(d.kmax() + 1) {
                assert_eq!(d.k_core(k), k_core_vertices(&g, k as usize));
            }
        }
    }
}
