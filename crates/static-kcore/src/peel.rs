use crate::{StaticGraph, VertexId};
use std::collections::VecDeque;

/// Computes the k-core of `graph` by peeling: repeatedly removes vertices with
/// fewer than `k` remaining neighbours.  Returns a boolean membership vector
/// indexed by vertex id.
///
/// Runs in `O(n + m)` time.
pub fn peel_k_core(graph: &StaticGraph, k: usize) -> Vec<bool> {
    let n = graph.num_vertices();
    let mut degree: Vec<usize> = (0..n as VertexId).map(|u| graph.degree(u)).collect();
    let mut alive = vec![true; n];
    let mut queue: VecDeque<VertexId> = (0..n as VertexId)
        .filter(|&u| degree[u as usize] < k)
        .collect();
    while let Some(u) = queue.pop_front() {
        if !alive[u as usize] {
            continue;
        }
        alive[u as usize] = false;
        for &v in graph.neighbors(u) {
            if alive[v as usize] {
                degree[v as usize] -= 1;
                if degree[v as usize] + 1 == k {
                    queue.push_back(v);
                }
            }
        }
    }
    alive
}

/// Convenience wrapper around [`peel_k_core`] returning the sorted list of
/// vertices in the k-core.
pub fn k_core_vertices(graph: &StaticGraph, k: usize) -> Vec<VertexId> {
    peel_k_core(graph, k)
        .iter()
        .enumerate()
        .filter_map(|(u, &in_core)| in_core.then_some(u as VertexId))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> StaticGraph {
        // A 4-clique {0,1,2,3} with a pendant path 3-4-5.
        StaticGraph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        )
    }

    #[test]
    fn three_core_is_the_clique() {
        assert_eq!(k_core_vertices(&graph(), 3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn one_core_keeps_everything_with_an_edge() {
        assert_eq!(k_core_vertices(&graph(), 1).len(), 6);
    }

    #[test]
    fn too_large_k_gives_empty_core() {
        assert!(k_core_vertices(&graph(), 4).is_empty());
        assert!(k_core_vertices(&graph(), 100).is_empty());
    }

    #[test]
    fn zero_core_is_all_vertices() {
        assert_eq!(k_core_vertices(&graph(), 0).len(), 6);
    }

    #[test]
    fn cascade_peeling() {
        // path 0-1-2-3: 2-core is empty because peeling cascades from the ends
        let g = StaticGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(k_core_vertices(&g, 2).is_empty());
        // cycle 0-1-2-3-0: 2-core is the whole cycle
        let g = StaticGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(k_core_vertices(&g, 2).len(), 4);
    }

    #[test]
    fn core_members_have_enough_neighbors_inside_core() {
        let g = graph();
        for k in 0..=4 {
            let member = peel_k_core(&g, k);
            for u in 0..g.num_vertices() as VertexId {
                if member[u as usize] {
                    let inside = g
                        .neighbors(u)
                        .iter()
                        .filter(|&&v| member[v as usize])
                        .count();
                    assert!(inside >= k, "vertex {u} has {inside} < {k} core neighbours");
                }
            }
        }
    }
}
