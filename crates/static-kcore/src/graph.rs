use crate::VertexId;

/// A simple undirected graph in CSR form.
///
/// Parallel edges are collapsed and self loops dropped at construction, so
/// vertex degree equals the number of *distinct* neighbours — the notion of
/// degree used by the k-core definition.
#[derive(Debug, Clone)]
pub struct StaticGraph {
    offsets: Vec<u32>,
    neighbors: Vec<VertexId>,
}

impl StaticGraph {
    /// Builds a graph with `num_vertices` vertices from an undirected edge
    /// list.  Self loops are dropped and parallel edges collapsed.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= num_vertices`.
    pub fn from_edges<I>(num_vertices: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut incidences: Vec<(VertexId, VertexId)> = Vec::new();
        for (u, v) in edges {
            assert!(
                (u as usize) < num_vertices && (v as usize) < num_vertices,
                "edge ({u}, {v}) out of range for {num_vertices} vertices"
            );
            if u == v {
                continue;
            }
            incidences.push((u, v));
            incidences.push((v, u));
        }
        incidences.sort_unstable();
        incidences.dedup();

        let mut offsets = vec![0u32; num_vertices + 1];
        for &(u, _) in &incidences {
            offsets[u as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let neighbors = incidences.into_iter().map(|(_, v)| v).collect();
        Self { offsets, neighbors }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected (collapsed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Distinct neighbours of `u`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// Degree (number of distinct neighbours) of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_collapses() {
        // triangle with a parallel edge and a self loop
        let g = StaticGraph::from_edges(4, [(0, 1), (1, 0), (1, 2), (0, 2), (3, 3)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = StaticGraph::from_edges(3, std::iter::empty());
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let _ = StaticGraph::from_edges(2, [(0, 5)]);
    }
}
